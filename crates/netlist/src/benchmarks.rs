//! MCNC-equivalent benchmark circuits.
//!
//! The paper evaluates on MCNC'91 circuits mapped onto a test gate library.
//! The MCNC suite itself is not redistributable here, so this module builds
//! *functional equivalents*: circuits with the published name and
//! primary-input count and the same kind of logic (see DESIGN.md §4 for the
//! substitution argument). Real `.blif` files can always be used instead
//! via [`crate::blif::parse`].
//!
//! Every constructor returns a validated netlist with loads back-annotated
//! from the given library.

use crate::library::{CellKind, Library};
use crate::netlist::{Netlist, SignalId};
use crate::units::Capacitance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a balanced tree of `two`/`three`-input gates over `signals`.
fn tree(n: &mut Netlist, mut signals: Vec<SignalId>, two: CellKind, three: CellKind) -> SignalId {
    assert!(!signals.is_empty());
    while signals.len() > 1 {
        let mut next = Vec::with_capacity(signals.len() / 2 + 1);
        let mut rest = signals.as_slice();
        while !rest.is_empty() {
            match rest.len() {
                1 => {
                    next.push(rest[0]);
                    rest = &rest[1..];
                }
                2 | 4 => {
                    next.push(n.add_gate(two, &rest[..2]).expect("valid gate"));
                    rest = &rest[2..];
                }
                _ => {
                    next.push(n.add_gate(three, &rest[..3]).expect("valid gate"));
                    rest = &rest[3..];
                }
            }
        }
        signals = next;
    }
    signals[0]
}

fn and_tree(n: &mut Netlist, signals: Vec<SignalId>) -> SignalId {
    tree(n, signals, CellKind::And2, CellKind::And3)
}

fn or_tree(n: &mut Netlist, signals: Vec<SignalId>) -> SignalId {
    tree(n, signals, CellKind::Or2, CellKind::Or3)
}

fn xor_tree(n: &mut Netlist, mut signals: Vec<SignalId>) -> SignalId {
    assert!(!signals.is_empty());
    while signals.len() > 1 {
        let mut next = Vec::with_capacity(signals.len() / 2 + 1);
        for pair in signals.chunks(2) {
            match pair {
                [a, b] => next.push(n.add_gate(CellKind::Xor2, &[*a, *b]).expect("valid gate")),
                [a] => next.push(*a),
                _ => unreachable!("chunks(2)"),
            }
        }
        signals = next;
    }
    signals[0]
}

fn finish(mut n: Netlist, library: &Library) -> Netlist {
    n.annotate_loads(library);
    n.validate().expect("generated netlist is valid");
    n
}

/// The paper's running example (Fig. 2a): `g1 = x1'`, `g2 = x2'`,
/// `g3 = x1 + x2`, with loads `C1 = 40 fF`, `C2 = 50 fF`, `C3 = 10 fF`.
///
/// Loads are fixed to the figure's values, *not* derived from a library, so
/// every golden number of Examples 1–5 can be asserted exactly.
///
/// # Examples
///
/// ```
/// use charfree_netlist::benchmarks::paper_unit;
/// let u = paper_unit();
/// assert_eq!(u.num_inputs(), 2);
/// assert_eq!(u.num_gates(), 3);
/// assert_eq!(u.total_load().femtofarads(), 100.0);
/// ```
pub fn paper_unit() -> Netlist {
    let mut n = Netlist::new("unit_u");
    let x1 = n.add_input("x1").expect("fresh");
    let x2 = n.add_input("x2").expect("fresh");
    let g1 = n.add_gate_named(CellKind::Inv, &[x1], "g1").expect("ok");
    let g2 = n.add_gate_named(CellKind::Inv, &[x2], "g2").expect("ok");
    let g3 = n
        .add_gate_named(CellKind::Or2, &[x1, x2], "g3")
        .expect("ok");
    for s in [g1, g2, g3] {
        n.mark_output(s).expect("ok");
    }
    for (gate, load) in [(g1, 40.0), (g2, 50.0), (g3, 10.0)] {
        let id = n.driver(gate).expect("driven");
        n.set_gate_load(id, Capacitance(load));
    }
    n.validate().expect("valid");
    n
}

/// `parity`: 16-input odd-parity tree (paper: n=16, N=36).
pub fn parity(library: &Library) -> Netlist {
    let mut n = Netlist::new("parity");
    let bits: Vec<SignalId> = (0..16)
        .map(|i| n.add_input(format!("in{i}")).expect("fresh"))
        .collect();
    let p = xor_tree(&mut n, bits);
    let out = n
        .add_gate_named(CellKind::Buf, &[p], "parity_out")
        .expect("ok");
    n.mark_output(out).expect("ok");
    finish(n, library)
}

/// `decod`: 4-to-16 line decoder with enable (paper: n=5, N=23).
///
/// Classic two-level predecode structure: address inverters, two 2-bit
/// predecoders, and a 4×4 AND matrix.
pub fn decod(library: &Library) -> Netlist {
    let mut n = Netlist::new("decod");
    let a: Vec<SignalId> = (0..4)
        .map(|i| n.add_input(format!("a{i}")).expect("fresh"))
        .collect();
    let en = n.add_input("en").expect("fresh");
    let na: Vec<SignalId> = a
        .iter()
        .map(|&s| n.add_gate(CellKind::Inv, &[s]).expect("ok"))
        .collect();
    // Low predecode over a0,a1; high predecode (with enable) over a2,a3.
    let lo = [
        n.add_gate(CellKind::And2, &[na[0], na[1]]).expect("ok"),
        n.add_gate(CellKind::And2, &[a[0], na[1]]).expect("ok"),
        n.add_gate(CellKind::And2, &[na[0], a[1]]).expect("ok"),
        n.add_gate(CellKind::And2, &[a[0], a[1]]).expect("ok"),
    ];
    let hi = [
        n.add_gate(CellKind::And3, &[na[2], na[3], en]).expect("ok"),
        n.add_gate(CellKind::And3, &[a[2], na[3], en]).expect("ok"),
        n.add_gate(CellKind::And3, &[na[2], a[3], en]).expect("ok"),
        n.add_gate(CellKind::And3, &[a[2], a[3], en]).expect("ok"),
    ];
    for (h, &hi_h) in hi.iter().enumerate() {
        for (l, &lo_l) in lo.iter().enumerate() {
            let y = n
                .add_gate_named(CellKind::And2, &[lo_l, hi_h], format!("y{}", h * 4 + l))
                .expect("ok");
            n.mark_output(y).expect("ok");
        }
    }
    finish(n, library)
}

/// `cm85`: dual 4-bit + carry magnitude-comparator slice
/// (paper: n=11, N=31). Outputs `eq`, `gt`, `lt`.
pub fn cm85(library: &Library) -> Netlist {
    let mut n = Netlist::new("cm85");
    let a: Vec<SignalId> = (0..5)
        .map(|i| n.add_input(format!("a{i}")).expect("fresh"))
        .collect();
    let b: Vec<SignalId> = (0..5)
        .map(|i| n.add_input(format!("b{i}")).expect("fresh"))
        .collect();
    let cin = n.add_input("cin").expect("fresh");

    // Per-bit equality.
    let eqs: Vec<SignalId> = (0..5)
        .map(|i| n.add_gate(CellKind::Xnor2, &[a[i], b[i]]).expect("ok"))
        .collect();
    // gt ripple from MSB: gt_i = (a_i & !b_i) | (eq_i & gt_{i-1});
    // seed with cin at the LSB side.
    let mut gt = cin;
    for i in 0..5 {
        let nb = n.add_gate(CellKind::Inv, &[b[i]]).expect("ok");
        let here = n.add_gate(CellKind::And2, &[a[i], nb]).expect("ok");
        let carry = n.add_gate(CellKind::And2, &[eqs[i], gt]).expect("ok");
        gt = n.add_gate(CellKind::Or2, &[here, carry]).expect("ok");
    }
    let eq = and_tree(&mut n, eqs);
    let n_eq = n.add_gate(CellKind::Inv, &[eq]).expect("ok");
    let lt = n
        .add_gate_named(CellKind::Nor2, &[gt, eq], "lt")
        .expect("ok");
    let eq_out = n.add_gate_named(CellKind::Buf, &[eq], "eq").expect("ok");
    let gt_out = n
        .add_gate_named(CellKind::And2, &[gt, n_eq], "gt")
        .expect("ok");
    for s in [eq_out, gt_out, lt] {
        n.mark_output(s).expect("ok");
    }
    finish(n, library)
}

/// `cmb`: 8+8-bit combination-lock comparator (paper: n=16, N=34).
/// Outputs `match` (a == key), `any` (OR of data bits), and `oddp`.
pub fn cmb(library: &Library) -> Netlist {
    let mut n = Netlist::new("cmb");
    let a: Vec<SignalId> = (0..8)
        .map(|i| n.add_input(format!("a{i}")).expect("fresh"))
        .collect();
    let k: Vec<SignalId> = (0..8)
        .map(|i| n.add_input(format!("k{i}")).expect("fresh"))
        .collect();
    let eqs: Vec<SignalId> = (0..8)
        .map(|i| n.add_gate(CellKind::Xnor2, &[a[i], k[i]]).expect("ok"))
        .collect();
    let m = and_tree(&mut n, eqs);
    let m_out = n.add_gate_named(CellKind::Buf, &[m], "match").expect("ok");
    let any = or_tree(&mut n, a.clone());
    let any_out = n.add_gate_named(CellKind::Buf, &[any], "any").expect("ok");
    let odd = xor_tree(&mut n, a);
    let odd_out = n.add_gate_named(CellKind::Buf, &[odd], "oddp").expect("ok");
    for s in [m_out, any_out, odd_out] {
        n.mark_output(s).expect("ok");
    }
    finish(n, library)
}

/// `cm150`: 16:1 multiplexer with enable, two-level AND-OR decomposition
/// (paper: n=21, N=46).
pub fn cm150(library: &Library) -> Netlist {
    let mut n = Netlist::new("cm150");
    let d: Vec<SignalId> = (0..16)
        .map(|i| n.add_input(format!("d{i}")).expect("fresh"))
        .collect();
    let s: Vec<SignalId> = (0..4)
        .map(|i| n.add_input(format!("s{i}")).expect("fresh"))
        .collect();
    let en = n.add_input("en").expect("fresh");
    let ns: Vec<SignalId> = s
        .iter()
        .map(|&x| n.add_gate(CellKind::Inv, &[x]).expect("ok"))
        .collect();
    let mut terms = Vec::with_capacity(16);
    for (i, &di) in d.iter().enumerate() {
        let lit = |_n: &mut Netlist, bit: usize| -> SignalId {
            if i >> bit & 1 == 1 {
                s[bit]
            } else {
                ns[bit]
            }
        };
        let l0 = lit(&mut n, 0);
        let l1 = lit(&mut n, 1);
        let l2 = lit(&mut n, 2);
        let l3 = lit(&mut n, 3);
        let sel_lo = n.add_gate(CellKind::And3, &[l0, l1, di]).expect("ok");
        let term = n.add_gate(CellKind::And3, &[l2, l3, sel_lo]).expect("ok");
        terms.push(term);
    }
    let y = or_tree(&mut n, terms);
    let out = n.add_gate_named(CellKind::And2, &[y, en], "y").expect("ok");
    n.mark_output(out).expect("ok");
    finish(n, library)
}

/// `mux`: 16:1 multiplexer with enable, MUX2-tree decomposition
/// (paper: n=21, N=61). Same function as [`cm150`], different structure —
/// useful as an implementation-sensitivity study.
pub fn mux(library: &Library) -> Netlist {
    let mut n = Netlist::new("mux");
    let d: Vec<SignalId> = (0..16)
        .map(|i| n.add_input(format!("d{i}")).expect("fresh"))
        .collect();
    let s: Vec<SignalId> = (0..4)
        .map(|i| n.add_input(format!("s{i}")).expect("fresh"))
        .collect();
    let en = n.add_input("en").expect("fresh");
    let mut layer = d;
    for sel in &s {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            next.push(
                n.add_gate(CellKind::Mux2, &[*sel, pair[0], pair[1]])
                    .expect("ok"),
            );
        }
        layer = next;
    }
    let out = n
        .add_gate_named(CellKind::And2, &[layer[0], en], "y")
        .expect("ok");
    n.mark_output(out).expect("ok");
    finish(n, library)
}

/// `comp`: 16-bit magnitude comparator, ripple structure
/// (paper: n=32, N=93). Outputs `gt` and `lt`.
pub fn comp(library: &Library) -> Netlist {
    let mut n = Netlist::new("comp");
    let a: Vec<SignalId> = (0..16)
        .map(|i| n.add_input(format!("a{i}")).expect("fresh"))
        .collect();
    let b: Vec<SignalId> = (0..16)
        .map(|i| n.add_input(format!("b{i}")).expect("fresh"))
        .collect();
    // MSB-first ripple with a running "all higher bits equal" prefix.
    let mut gt: Option<SignalId> = None;
    let mut lt: Option<SignalId> = None;
    let mut eq_prefix: Option<SignalId> = None;
    for i in (0..16).rev() {
        let eq = n.add_gate(CellKind::Xnor2, &[a[i], b[i]]).expect("ok");
        let nb = n.add_gate(CellKind::Inv, &[b[i]]).expect("ok");
        let na = n.add_gate(CellKind::Inv, &[a[i]]).expect("ok");
        let a_gt = n.add_gate(CellKind::And2, &[a[i], nb]).expect("ok");
        let a_lt = n.add_gate(CellKind::And2, &[na, b[i]]).expect("ok");
        let (contrib_gt, contrib_lt) = match eq_prefix {
            None => (a_gt, a_lt),
            Some(pref) => (
                n.add_gate(CellKind::And2, &[pref, a_gt]).expect("ok"),
                n.add_gate(CellKind::And2, &[pref, a_lt]).expect("ok"),
            ),
        };
        gt = Some(match gt {
            None => contrib_gt,
            Some(prev) => n.add_gate(CellKind::Or2, &[prev, contrib_gt]).expect("ok"),
        });
        lt = Some(match lt {
            None => contrib_lt,
            Some(prev) => n.add_gate(CellKind::Or2, &[prev, contrib_lt]).expect("ok"),
        });
        eq_prefix = Some(match eq_prefix {
            None => eq,
            Some(pref) => n.add_gate(CellKind::And2, &[pref, eq]).expect("ok"),
        });
    }
    let gt_out = n
        .add_gate_named(CellKind::Buf, &[gt.expect("16 bits")], "gt")
        .expect("ok");
    let lt_out = n
        .add_gate_named(CellKind::Buf, &[lt.expect("16 bits")], "lt")
        .expect("ok");
    n.mark_output(gt_out).expect("ok");
    n.mark_output(lt_out).expect("ok");
    finish(n, library)
}

/// `pcle`: 9-stage parallel carry chain (propagate/generate expander,
/// paper: n=19, N=45). Inputs are 9 `(p, g)` pairs plus `cin`; outputs the
/// nine carries.
pub fn pcle(library: &Library) -> Netlist {
    let mut n = Netlist::new("pcle");
    let p: Vec<SignalId> = (0..9)
        .map(|i| n.add_input(format!("p{i}")).expect("fresh"))
        .collect();
    let g: Vec<SignalId> = (0..9)
        .map(|i| n.add_input(format!("g{i}")).expect("fresh"))
        .collect();
    let cin = n.add_input("cin").expect("fresh");
    let mut carry = cin;
    for i in 0..9 {
        let prop = n.add_gate(CellKind::And2, &[p[i], carry]).expect("ok");
        carry = n
            .add_gate_named(CellKind::Or2, &[g[i], prop], format!("c{}", i + 1))
            .expect("ok");
        n.mark_output(carry).expect("ok");
    }
    finish(n, library)
}

/// A ripple-carry ALU used for `alu2`/`alu4` (paper: n=10/N=252 and
/// n=14/N=460). Two mode bits select among ADD, AND, OR, XOR; the
/// per-bit result is selected by a MUX2 tree. Output includes carry-out.
fn alu(name: &str, width: usize, library: &Library) -> Netlist {
    let mut n = Netlist::new(name);
    let a: Vec<SignalId> = (0..width)
        .map(|i| n.add_input(format!("a{i}")).expect("fresh"))
        .collect();
    let b: Vec<SignalId> = (0..width)
        .map(|i| n.add_input(format!("b{i}")).expect("fresh"))
        .collect();
    let m0 = n.add_input("m0").expect("fresh");
    let m1 = n.add_input("m1").expect("fresh");

    // Ripple adder.
    let mut carry: Option<SignalId> = None;
    let mut sums = Vec::with_capacity(width);
    for i in 0..width {
        let axb = n.add_gate(CellKind::Xor2, &[a[i], b[i]]).expect("ok");
        match carry {
            None => {
                sums.push(axb);
                carry = Some(n.add_gate(CellKind::And2, &[a[i], b[i]]).expect("ok"));
            }
            Some(c) => {
                sums.push(n.add_gate(CellKind::Xor2, &[axb, c]).expect("ok"));
                let t1 = n.add_gate(CellKind::And2, &[axb, c]).expect("ok");
                let t2 = n.add_gate(CellKind::And2, &[a[i], b[i]]).expect("ok");
                carry = Some(n.add_gate(CellKind::Or2, &[t1, t2]).expect("ok"));
            }
        }
    }

    for i in 0..width {
        let and_i = n.add_gate(CellKind::And2, &[a[i], b[i]]).expect("ok");
        let or_i = n.add_gate(CellKind::Or2, &[a[i], b[i]]).expect("ok");
        let xor_i = n.add_gate(CellKind::Xor2, &[a[i], b[i]]).expect("ok");
        // m1 m0: 00 -> sum, 01 -> and, 10 -> or, 11 -> xor.
        let lo = n
            .add_gate(CellKind::Mux2, &[m0, sums[i], and_i])
            .expect("ok");
        let hi = n.add_gate(CellKind::Mux2, &[m0, or_i, xor_i]).expect("ok");
        let y = n
            .add_gate_named(CellKind::Mux2, &[m1, lo, hi], format!("y{i}"))
            .expect("ok");
        n.mark_output(y).expect("ok");
    }
    // Carry-out is only meaningful in ADD mode; gate it with !m0 & !m1.
    let nm0 = n.add_gate(CellKind::Inv, &[m0]).expect("ok");
    let nm1 = n.add_gate(CellKind::Inv, &[m1]).expect("ok");
    let add_mode = n.add_gate(CellKind::And2, &[nm0, nm1]).expect("ok");
    let cout = n
        .add_gate_named(
            CellKind::And2,
            &[carry.expect("width > 0"), add_mode],
            "cout",
        )
        .expect("ok");
    n.mark_output(cout).expect("ok");
    finish(n, library)
}

/// `alu2`: 4-bit ALU (paper: n=10, N=252).
pub fn alu2(library: &Library) -> Netlist {
    alu("alu2", 4, library)
}

/// `alu4`: 6-bit ALU (paper: n=14, N=460).
pub fn alu4(library: &Library) -> Netlist {
    alu("alu4", 6, library)
}

/// Seeded, locality-structured random logic DAG.
///
/// Each gate draws its fan-ins from a sliding window over the most recent
/// signals, which keeps input cones (and therefore node-function BDDs)
/// moderate — the same qualitative structure as the multi-level-optimized
/// MCNC random-logic circuits. Deterministic for a given `(inputs, gates,
/// seed)`.
///
/// Signals that end up with no fan-out become primary outputs.
pub fn random_logic(
    name: &str,
    num_inputs: usize,
    num_gates: usize,
    seed: u64,
    library: &Library,
) -> Netlist {
    random_logic_with_window(name, num_inputs, num_gates, seed, 12, library)
}

/// [`random_logic`] with an explicit locality-window width.
///
/// The window is the dominant difficulty knob: a wider window increases
/// cone overlap and therefore the exact switching-capacitance ADD size
/// (symbolic difficulty), at the risk of blow-up when it approaches the
/// input count.
pub fn random_logic_with_window(
    name: &str,
    num_inputs: usize,
    num_gates: usize,
    seed: u64,
    window: usize,
    library: &Library,
) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut n = Netlist::new(name);
    // All primary inputs are declared up front, but they enter the
    // fan-in pool *progressively* (one every few gates): the narrow
    // locality window then keeps mixing fresh inputs with recent
    // intermediate signals, which grows input cones steadily — realistic
    // multi-level structure with non-trivial symbolic difficulty — without
    // the exponential blow-up of a wide window.
    let inputs: Vec<SignalId> = (0..num_inputs)
        .map(|i| n.add_input(format!("in{i}")).expect("fresh"))
        .collect();
    let bootstrap = num_inputs.min(window.max(4));
    let mut pool: Vec<SignalId> = inputs[..bootstrap].to_vec();
    let mut pending = bootstrap;
    let inject_every = if num_inputs > bootstrap {
        (num_gates / (2 * (num_inputs - bootstrap).max(1))).max(1)
    } else {
        usize::MAX
    };

    const CELLS: [CellKind; 10] = [
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Inv,
        CellKind::Aoi21,
        CellKind::Oai21,
        CellKind::Mux2,
    ];
    // Track fan-out so selection can prefer unconsumed signals, biasing the
    // DAG toward tree-like (BDD-friendly) shape.
    let mut fanout = vec![0u32; pool.len()];
    // 64-slot random simulation signatures: reject gates that are (almost
    // surely) constant or redundant copies of a fan-in, which would
    // otherwise freeze whole regions of a narrow-window circuit.
    let mut signatures: Vec<u64> = (0..pool.len()).map(|_| rng.gen::<u64>()).collect();

    for gate_no in 0..num_gates {
        if pending < num_inputs && gate_no % inject_every == inject_every - 1 {
            pool.push(inputs[pending]);
            fanout.push(0);
            signatures.push(rng.gen::<u64>());
            pending += 1;
        }
        let lo = pool.len().saturating_sub(window);
        let mut accepted: Option<(CellKind, Vec<usize>, u64)> = None;
        for attempt in 0..24 {
            let kind = CELLS[rng.gen_range(0..CELLS.len())];
            let mut idxs = Vec::with_capacity(kind.arity());
            let mut guard = 0;
            while idxs.len() < kind.arity() {
                let a = rng.gen_range(lo..pool.len());
                let b = rng.gen_range(lo..pool.len());
                // Tournament pick: prefer the less-consumed candidate.
                let idx = if fanout[a] <= fanout[b] { a } else { b };
                if !idxs.contains(&idx) || guard > 8 {
                    idxs.push(idx);
                }
                guard += 1;
            }
            let pins: Vec<u64> = idxs.iter().map(|&i| signatures[i]).collect();
            let sig = kind.eval_word(&pins);
            let degenerate =
                sig == 0 || sig == u64::MAX || pins.iter().any(|&p| p == sig || p == !sig);
            if !degenerate || attempt == 23 {
                accepted = Some((kind, idxs, sig));
                break;
            }
        }
        let (kind, idxs, sig) = accepted.expect("attempt loop always accepts");
        let ins: Vec<SignalId> = idxs.iter().map(|&i| pool[i]).collect();
        for &i in &idxs {
            fanout[i] += 1;
        }
        let out = n.add_gate(kind, &ins).expect("ok");
        pool.push(out);
        fanout.push(0);
        signatures.push(sig);
    }

    // Everything without fan-out becomes an output.
    let fo = n.fanouts();
    let sinks: Vec<SignalId> = pool
        .iter()
        .copied()
        .filter(|s| fo[s.index()].is_empty() && n.driver(*s).is_some())
        .collect();
    if sinks.is_empty() {
        let last = *pool.last().expect("nonempty");
        n.mark_output(last).expect("ok");
    } else {
        for s in sinks {
            n.mark_output(s).expect("ok");
        }
    }
    finish(n, library)
}

/// Block-structured random logic for the larger MCNC stand-ins.
///
/// The circuit is a chain of `num_blocks` blocks. Each block draws on its
/// own random subset of primary inputs (about `num_inputs / num_blocks`
/// wide, with overlap) plus a single carry signal from the previous block,
/// and generates `num_gates / num_blocks` gates with the locality-window
/// process of [`random_logic`]. The carry bottleneck keeps every node
/// function's BDD small (composition through one bit adds only a factor
/// of two), while the *switching-capacitance ADD* — a sum over all blocks'
/// contributions — grows multiplicatively in its value set, giving the
/// symbolic difficulty the paper reports for circuits like `k2` without
/// the exponential node-function blow-up of globally random logic.
pub fn random_logic_blocks(
    name: &str,
    num_inputs: usize,
    num_gates: usize,
    num_blocks: usize,
    seed: u64,
    library: &Library,
) -> Netlist {
    assert!(num_blocks >= 1 && num_gates >= num_blocks);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut n = Netlist::new(name);
    let inputs: Vec<SignalId> = (0..num_inputs)
        .map(|i| n.add_input(format!("in{i}")).expect("fresh"))
        .collect();

    const CELLS: [CellKind; 10] = [
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Inv,
        CellKind::Aoi21,
        CellKind::Oai21,
        CellKind::Mux2,
    ];
    let gates_per_block = num_gates / num_blocks;
    let block_width = (num_inputs / num_blocks).max(3) + 2;
    let window = 10usize;
    let mut carry: Option<(SignalId, u64)> = None;
    let mut made = 0usize;

    for block in 0..num_blocks {
        // This block's input subset: a contiguous rotation plus strays.
        let base = block * num_inputs / num_blocks;
        let mut pool: Vec<SignalId> = (0..block_width)
            .map(|k| inputs[(base + k) % num_inputs])
            .collect();
        let mut signatures: Vec<u64> = (0..pool.len()).map(|_| rng.gen()).collect();
        if let Some((sig, word)) = carry {
            pool.push(sig);
            signatures.push(word);
        }
        let mut fanout = vec![0u32; pool.len()];

        let in_this_block = if block == num_blocks - 1 {
            num_gates - made
        } else {
            gates_per_block
        };
        for _ in 0..in_this_block {
            let lo = pool.len().saturating_sub(window);
            let mut accepted: Option<(CellKind, Vec<usize>, u64)> = None;
            for attempt in 0..24 {
                let kind = CELLS[rng.gen_range(0..CELLS.len())];
                let mut idxs = Vec::with_capacity(kind.arity());
                let mut guard = 0;
                while idxs.len() < kind.arity() {
                    let a = rng.gen_range(lo..pool.len());
                    let b = rng.gen_range(lo..pool.len());
                    let idx = if fanout[a] <= fanout[b] { a } else { b };
                    if !idxs.contains(&idx) || guard > 8 {
                        idxs.push(idx);
                    }
                    guard += 1;
                }
                let pins: Vec<u64> = idxs.iter().map(|&i| signatures[i]).collect();
                let sig = kind.eval_word(&pins);
                let degenerate =
                    sig == 0 || sig == u64::MAX || pins.iter().any(|&p| p == sig || p == !sig);
                if !degenerate || attempt == 23 {
                    accepted = Some((kind, idxs, sig));
                    break;
                }
            }
            let (kind, idxs, sig) = accepted.expect("attempt loop always accepts");
            let ins: Vec<SignalId> = idxs.iter().map(|&i| pool[i]).collect();
            for &i in &idxs {
                fanout[i] += 1;
            }
            let out = n.add_gate(kind, &ins).expect("ok");
            pool.push(out);
            fanout.push(0);
            signatures.push(sig);
            made += 1;
        }
        carry = Some((
            *pool.last().expect("nonempty"),
            *signatures.last().expect("nonempty"),
        ));
    }

    // Every gate output without fan-out becomes a primary output.
    let fo = n.fanouts();
    let sinks: Vec<SignalId> = n
        .gates()
        .map(|(_, g)| g.output())
        .filter(|s| fo[s.index()].is_empty())
        .collect();
    for s in sinks {
        n.mark_output(s).expect("ok");
    }
    finish(n, library)
}

/// `x2`: small random logic (paper: n=10, N=40).
pub fn x2(library: &Library) -> Netlist {
    random_logic("x2", 10, 40, 0x0002, library)
}

/// `x1`: medium random logic (paper: n=49, N=228), block-structured.
pub fn x1(library: &Library) -> Netlist {
    random_logic_blocks("x1", 49, 228, 6, 0x0001, library)
}

/// `k2`: large random logic (paper: n=45, N=1206), block-structured.
pub fn k2(library: &Library) -> Netlist {
    random_logic_blocks("k2", 45, 1206, 10, 0x004b, library)
}

/// `mult{width}`: array multiplier — the qualitative stand-in for the
/// paper's C6288 ADD-blow-up remark.
pub fn mult(width: usize, library: &Library) -> Netlist {
    let mut n = Netlist::new(format!("mult{width}"));
    let a: Vec<SignalId> = (0..width)
        .map(|i| n.add_input(format!("a{i}")).expect("fresh"))
        .collect();
    let b: Vec<SignalId> = (0..width)
        .map(|i| n.add_input(format!("b{i}")).expect("fresh"))
        .collect();

    // Partial products.
    let mut rows: Vec<Vec<SignalId>> = Vec::with_capacity(width);
    for &b_bit in b.iter().take(width) {
        let row: Vec<SignalId> = (0..width)
            .map(|ai| n.add_gate(CellKind::And2, &[a[ai], b_bit]).expect("ok"))
            .collect();
        rows.push(row);
    }

    // Ripple-carry accumulation of shifted rows.
    let mut acc: Vec<SignalId> = rows[0].clone(); // product bits 0..width-1
    let mut outputs: Vec<SignalId> = vec![acc[0]];
    for row in rows.iter().skip(1) {
        // Add row (aligned at bit j) to acc (currently bits j-1+1..).
        let mut next = Vec::with_capacity(width);
        let mut carry: Option<SignalId> = None;
        for (i, &pp) in row.iter().enumerate() {
            let other = acc.get(i + 1).copied();
            let (sum, c) = match (other, carry) {
                (None, None) => (pp, None),
                (Some(x), None) => {
                    let s = n.add_gate(CellKind::Xor2, &[x, pp]).expect("ok");
                    let c = n.add_gate(CellKind::And2, &[x, pp]).expect("ok");
                    (s, Some(c))
                }
                (None, Some(c0)) => {
                    let s = n.add_gate(CellKind::Xor2, &[c0, pp]).expect("ok");
                    let c = n.add_gate(CellKind::And2, &[c0, pp]).expect("ok");
                    (s, Some(c))
                }
                (Some(x), Some(c0)) => {
                    let axb = n.add_gate(CellKind::Xor2, &[x, pp]).expect("ok");
                    let s = n.add_gate(CellKind::Xor2, &[axb, c0]).expect("ok");
                    let t1 = n.add_gate(CellKind::And2, &[axb, c0]).expect("ok");
                    let t2 = n.add_gate(CellKind::And2, &[x, pp]).expect("ok");
                    let c = n.add_gate(CellKind::Or2, &[t1, t2]).expect("ok");
                    (s, Some(c))
                }
            };
            next.push(sum);
            carry = c;
        }
        if let Some(c) = carry {
            next.push(c);
        }
        outputs.push(next[0]);
        acc = next;
    }
    for &s in outputs.iter().chain(acc.iter().skip(1)) {
        n.mark_output(s).expect("ok");
    }
    finish(n, library)
}

/// The Table-1 benchmark set, in the paper's order.
///
/// `k2` is by far the largest; callers on a budget can skip it by name.
pub fn table1_circuits(library: &Library) -> Vec<Netlist> {
    vec![
        alu2(library),
        alu4(library),
        cmb(library),
        cm150(library),
        cm85(library),
        comp(library),
        decod(library),
        k2(library),
        mux(library),
        parity(library),
        pcle(library),
        x1(library),
        x2(library),
    ]
}

/// Looks a benchmark up by its Table-1 name.
pub fn by_name(name: &str, library: &Library) -> Option<Netlist> {
    match name {
        "alu2" => Some(alu2(library)),
        "alu4" => Some(alu4(library)),
        "cmb" => Some(cmb(library)),
        "cm150" => Some(cm150(library)),
        "cm85" => Some(cm85(library)),
        "comp" => Some(comp(library)),
        "decod" => Some(decod(library)),
        "k2" => Some(k2(library)),
        "mux" => Some(mux(library)),
        "parity" => Some(parity(library)),
        "pcle" => Some(pcle(library)),
        "x1" => Some(x1(library)),
        "x2" => Some(x2(library)),
        "unit_u" => Some(paper_unit()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(n: &Netlist, inputs: &[bool]) -> Vec<bool> {
        let mut values = vec![false; n.num_signals()];
        for (i, &sigid) in n.inputs().iter().enumerate() {
            values[sigid.index()] = inputs[i];
        }
        for (_, gate) in n.gates() {
            let ins: Vec<bool> = gate.inputs().iter().map(|s| values[s.index()]).collect();
            values[gate.output().index()] = gate.kind().eval(&ins);
        }
        n.outputs().iter().map(|o| values[o.index()]).collect()
    }

    fn lib() -> Library {
        Library::test_library()
    }

    #[test]
    fn paper_unit_matches_figure2() {
        let u = paper_unit();
        assert_eq!(u.num_inputs(), 2);
        assert_eq!(u.num_gates(), 3);
        // Loads: C1=40, C2=50, C3=10.
        let loads: Vec<f64> = u.gates().map(|(_, g)| g.load().femtofarads()).collect();
        assert_eq!(loads, vec![40.0, 50.0, 10.0]);
        // Functions: g1=x1', g2=x2', g3=x1+x2.
        let out = eval(&u, &[true, false]);
        assert_eq!(out, vec![false, true, true]);
    }

    #[test]
    fn parity_is_odd_parity() {
        let p = parity(&lib());
        assert_eq!(p.num_inputs(), 16);
        for trial in [0u32, 1, 0b1010101, 0xffff, 0x8001] {
            let asg: Vec<bool> = (0..16).map(|i| trial >> i & 1 == 1).collect();
            let want = trial.count_ones() % 2 == 1;
            assert_eq!(eval(&p, &asg)[0], want, "trial={trial:#x}");
        }
    }

    #[test]
    fn decod_is_one_hot_with_enable() {
        let d = decod(&lib());
        assert_eq!(d.num_inputs(), 5);
        for addr in 0..16usize {
            let mut asg = vec![false; 5];
            for (b, bit) in asg.iter_mut().enumerate().take(4) {
                *bit = addr >> b & 1 == 1;
            }
            // Disabled: all outputs low.
            let out = eval(&d, &asg);
            assert!(out.iter().all(|&b| !b));
            // Enabled: exactly the addressed line high.
            asg[4] = true;
            let out = eval(&d, &asg);
            for (i, &bit) in out.iter().enumerate() {
                assert_eq!(bit, i == addr, "addr={addr} line={i}");
            }
        }
    }

    #[test]
    fn cm85_compares() {
        let c = cm85(&lib());
        assert_eq!(c.num_inputs(), 11);
        // outputs: eq, gt, lt for (a, b, cin).
        let run = |a: u32, b: u32, cin: bool| -> Vec<bool> {
            let mut asg = Vec::with_capacity(11);
            for i in 0..5 {
                asg.push(a >> i & 1 == 1);
            }
            for i in 0..5 {
                asg.push(b >> i & 1 == 1);
            }
            asg.push(cin);
            eval(&c, &asg)
        };
        for (a, b) in [(3u32, 7u32), (7, 3), (12, 12), (31, 0), (0, 0)] {
            let out = run(a, b, false);
            assert_eq!(out[0], a == b, "eq a={a} b={b}");
            assert_eq!(out[1], a > b, "gt a={a} b={b}");
            assert_eq!(out[2], a < b, "lt a={a} b={b}");
        }
    }

    #[test]
    fn cmb_matches_lock() {
        let c = cmb(&lib());
        assert_eq!(c.num_inputs(), 16);
        let run = |a: u32, k: u32| -> Vec<bool> {
            let mut asg = Vec::with_capacity(16);
            for i in 0..8 {
                asg.push(a >> i & 1 == 1);
            }
            for i in 0..8 {
                asg.push(k >> i & 1 == 1);
            }
            eval(&c, &asg)
        };
        let out = run(0xa5, 0xa5);
        assert!(out[0], "match");
        assert!(out[1], "any");
        assert_eq!(out[2], (0xa5u32).count_ones() % 2 == 1);
        let out = run(0xa5, 0xa4);
        assert!(!out[0]);
        let out = run(0, 0);
        assert!(out[0]);
        assert!(!out[1]);
    }

    #[test]
    fn muxes_select_and_agree() {
        let l = lib();
        let m1 = cm150(&l);
        let m2 = mux(&l);
        assert_eq!(m1.num_inputs(), 21);
        assert_eq!(m2.num_inputs(), 21);
        // Inputs: d0..d15, s0..s3, en.
        let mut rng_state = 0x1234_5678u64;
        for _ in 0..50 {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let data = (rng_state >> 16) as u16;
            let sel = (rng_state >> 40) as usize % 16;
            let en = rng_state >> 63 & 1 == 1;
            let mut asg = Vec::with_capacity(21);
            for i in 0..16 {
                asg.push(data >> i & 1 == 1);
            }
            for b in 0..4 {
                asg.push(sel >> b & 1 == 1);
            }
            asg.push(en);
            let want = en && (data >> sel & 1 == 1);
            assert_eq!(
                eval(&m1, &asg)[0],
                want,
                "cm150 data={data:#x} sel={sel} en={en}"
            );
            assert_eq!(
                eval(&m2, &asg)[0],
                want,
                "mux data={data:#x} sel={sel} en={en}"
            );
        }
    }

    #[test]
    fn comp_is_magnitude_comparator() {
        let c = comp(&lib());
        assert_eq!(c.num_inputs(), 32);
        let run = |a: u32, b: u32| -> Vec<bool> {
            let mut asg = Vec::with_capacity(32);
            for i in 0..16 {
                asg.push(a >> i & 1 == 1);
            }
            for i in 0..16 {
                asg.push(b >> i & 1 == 1);
            }
            eval(&c, &asg)
        };
        for (a, b) in [
            (1u32, 2u32),
            (2, 1),
            (0xffff, 0xffff),
            (0x8000, 0x7fff),
            (0, 1),
        ] {
            let out = run(a, b);
            assert_eq!(out[0], a > b, "gt a={a:#x} b={b:#x}");
            assert_eq!(out[1], a < b, "lt a={a:#x} b={b:#x}");
        }
    }

    #[test]
    fn pcle_ripples_carries() {
        let c = pcle(&lib());
        assert_eq!(c.num_inputs(), 19);
        // p = all ones, g = 0, cin = 1 -> all carries 1.
        let mut asg = vec![true; 9];
        asg.extend(vec![false; 9]);
        asg.push(true);
        assert!(eval(&c, &asg).iter().all(|&b| b));
        // cin = 0, g0 = 1 -> carries from c1 on.
        let mut asg = vec![true; 9];
        asg.extend(vec![false; 9]);
        asg[9] = true; // g0
        asg.push(false);
        let out = eval(&c, &asg);
        assert!(out.iter().all(|&b| b), "g0 generates, p propagates");
    }

    #[test]
    fn alu_modes() {
        let a4 = alu2(&lib());
        assert_eq!(a4.num_inputs(), 10);
        let run = |a: u32, b: u32, mode: u32| -> (u32, bool) {
            let mut asg = Vec::with_capacity(10);
            for i in 0..4 {
                asg.push(a >> i & 1 == 1);
            }
            for i in 0..4 {
                asg.push(b >> i & 1 == 1);
            }
            asg.push(mode & 1 == 1);
            asg.push(mode & 2 == 2);
            let out = eval(&a4, &asg);
            let mut y = 0u32;
            for (i, &bit) in out.iter().enumerate().take(4) {
                if bit {
                    y |= 1 << i;
                }
            }
            (y, out[4])
        };
        for (a, b) in [(5u32, 9u32), (15, 1), (0, 0), (7, 8)] {
            let (sum, cout) = run(a, b, 0);
            assert_eq!(sum, (a + b) & 0xf, "add a={a} b={b}");
            assert_eq!(cout, a + b > 15, "cout a={a} b={b}");
            assert_eq!(run(a, b, 1).0, a & b);
            assert_eq!(run(a, b, 2).0, a | b);
            assert_eq!(run(a, b, 3).0, a ^ b);
        }
        let a6 = alu4(&lib());
        assert_eq!(a6.num_inputs(), 14);
        assert!(a6.num_gates() > a4.num_gates());
    }

    #[test]
    fn random_logic_is_deterministic_and_valid() {
        let l = lib();
        let r1 = random_logic("r", 10, 40, 7, &l);
        let r2 = random_logic("r", 10, 40, 7, &l);
        assert_eq!(r1.num_gates(), r2.num_gates());
        assert_eq!(r1.num_gates(), 40);
        let asg: Vec<bool> = (0..10).map(|i| i % 3 == 0).collect();
        assert_eq!(eval(&r1, &asg), eval(&r2, &asg));
        // Different seed, different function somewhere on the input cube
        // (deterministic generators, so this is a stable check).
        let r3 = random_logic("r", 10, 40, 8, &l);
        let differs = (0..1u32 << 10).any(|bits| {
            let asg: Vec<bool> = (0..10).map(|i| bits >> i & 1 == 1).collect();
            eval(&r1, &asg) != eval(&r3, &asg)
        });
        assert!(differs, "seeds 7 and 8 must generate different logic");
        assert!(r1.validate().is_ok());
        assert!(r3.validate().is_ok());
    }

    #[test]
    fn mult_multiplies() {
        let m = mult(4, &lib());
        assert_eq!(m.num_inputs(), 8);
        let run = |a: u32, b: u32| -> u32 {
            let mut asg = Vec::with_capacity(8);
            for i in 0..4 {
                asg.push(a >> i & 1 == 1);
            }
            for i in 0..4 {
                asg.push(b >> i & 1 == 1);
            }
            let out = eval(&m, &asg);
            let mut p = 0u32;
            for (i, &bit) in out.iter().enumerate() {
                if bit {
                    p |= 1 << i;
                }
            }
            p
        };
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(run(a, b), a * b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn table1_set_matches_paper_input_counts() {
        let l = lib();
        let set = table1_circuits(&l);
        let expected: [(&str, usize); 13] = [
            ("alu2", 10),
            ("alu4", 14),
            ("cmb", 16),
            ("cm150", 21),
            ("cm85", 11),
            ("comp", 32),
            ("decod", 5),
            ("k2", 45),
            ("mux", 21),
            ("parity", 16),
            ("pcle", 19),
            ("x1", 49),
            ("x2", 10),
        ];
        assert_eq!(set.len(), expected.len());
        for (n, (name, inputs)) in set.iter().zip(expected) {
            assert_eq!(n.name(), name);
            assert_eq!(n.num_inputs(), inputs, "{name}");
            assert!(n.validate().is_ok(), "{name}");
            assert!(n.total_load().femtofarads() > 0.0, "{name}");
        }
    }

    #[test]
    fn by_name_lookup() {
        let l = lib();
        assert!(by_name("cm85", &l).is_some());
        assert!(by_name("unit_u", &l).is_some());
        assert!(by_name("nope", &l).is_none());
    }
}
