//! Shared hand-built netlist fixtures for tests across the workspace.
//!
//! Several crates used to hand-roll the same three small circuits in
//! their test modules; keeping the canonical copies here means a fixture
//! change (or a structural API change) ripples through every consumer at
//! once instead of silently diverging.

use crate::{CellKind, Library, Netlist};

/// The 3-input hand-built unit used by the end-to-end model tests:
///
/// ```text
/// ab  = NAND2(a, b)
/// abc = OAI21(ab, c, a)
/// x   = XOR2(abc, c)        (primary output)
/// ```
///
/// Exercises multi-fanout (`a` and `c` feed two gates each), a complex
/// cell, and every structural mutation API on the way.
#[must_use]
pub fn hand_unit(library: &Library) -> Netlist {
    let mut n = Netlist::new("hand");
    let a = n.add_input("a").expect("fresh signal name");
    let b = n.add_input("b").expect("fresh signal name");
    let c = n.add_input("c").expect("fresh signal name");
    let ab = n.add_gate(CellKind::Nand2, &[a, b]).expect("valid fanin");
    let abc = n
        .add_gate(CellKind::Oai21, &[ab, c, a])
        .expect("valid fanin");
    let x = n.add_gate(CellKind::Xor2, &[abc, c]).expect("valid fanin");
    n.mark_output(x).expect("driven signal");
    n.annotate_loads(library);
    n.validate().expect("fixture is structurally valid");
    n
}

/// A single-input chain of `len` inverters (`len >= 1`), output at the
/// end. Depth equals `len`, so a unit-delay simulation needs `len + 1`
/// steps to observe quiescence — the canonical way to drive
/// `NonSettling` with a tightened step bound.
#[must_use]
pub fn inverter_chain(len: usize, library: &Library) -> Netlist {
    assert!(len >= 1, "a chain needs at least one inverter");
    let mut n = Netlist::new("chain");
    let mut prev = n.add_input("a").expect("fresh signal name");
    for _ in 0..len {
        prev = n.add_gate(CellKind::Inv, &[prev]).expect("valid fanin");
    }
    n.mark_output(prev).expect("driven signal");
    n.annotate_loads(library);
    n.validate().expect("fixture is structurally valid");
    n
}

/// `y = a XOR inv(inv(a))` — logically constant 0, but the two paths
/// from `a` to the XOR have unequal depth, so a rising input glitches
/// the output under unit-delay timing while the zero-delay model sees
/// nothing. The canonical reconvergent-fanout glitch fixture.
#[must_use]
pub fn reconvergent_glitcher(library: &Library) -> Netlist {
    let mut n = Netlist::new("glitchy");
    let a = n.add_input("a").expect("fresh signal name");
    let i1 = n.add_gate(CellKind::Inv, &[a]).expect("valid fanin");
    let i2 = n.add_gate(CellKind::Inv, &[i1]).expect("valid fanin");
    let y = n.add_gate(CellKind::Xor2, &[a, i2]).expect("valid fanin");
    n.mark_output(y).expect("driven signal");
    n.annotate_loads(library);
    n.validate().expect("fixture is structurally valid");
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_well_formed() {
        let lib = Library::test_library();
        let hand = hand_unit(&lib);
        assert_eq!(hand.num_inputs(), 3);
        assert_eq!(hand.num_gates(), 3);
        let chain = inverter_chain(4, &lib);
        assert_eq!(chain.depth(), 4);
        let glitchy = reconvergent_glitcher(&lib);
        assert_eq!(glitchy.num_inputs(), 1);
        assert_eq!(glitchy.num_gates(), 3);
    }
}
