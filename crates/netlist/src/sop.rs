//! Sum-of-products covers and their synthesis into library gates.
//!
//! BLIF `.names` nodes carry their logic as a PLA-style cover. To obtain a
//! *gate-level* golden model (the paper maps benchmarks onto a test gate
//! library), covers are decomposed into inverter / AND / OR trees of
//! bounded fan-in.

use crate::library::CellKind;
use crate::netlist::{Netlist, NetlistError, SignalId};

/// One literal position in a cube: the input is required `true`, required
/// `false`, or unconstrained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LitValue {
    /// Input must be 0 (`0` in PLA notation).
    Zero,
    /// Input must be 1 (`1` in PLA notation).
    One,
    /// Don't care (`-` in PLA notation).
    DontCare,
}

/// A product term over `k` ordered inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cube(pub Vec<LitValue>);

impl Cube {
    /// Evaluates the cube (conjunction of its literals).
    pub fn eval(&self, inputs: &[bool]) -> bool {
        self.0.iter().zip(inputs).all(|(lit, &v)| match lit {
            LitValue::Zero => !v,
            LitValue::One => v,
            LitValue::DontCare => true,
        })
    }

    /// Parses PLA notation (`01-0…`).
    ///
    /// Returns `None` on any character outside `{0,1,-}`.
    pub fn parse(s: &str) -> Option<Cube> {
        s.chars()
            .map(|c| match c {
                '0' => Some(LitValue::Zero),
                '1' => Some(LitValue::One),
                '-' => Some(LitValue::DontCare),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()
            .map(Cube)
    }
}

/// A single-output sum-of-products cover.
///
/// `polarity = true` means the cover lists the ON-set (function = OR of
/// cubes); `false` means it lists the OFF-set (function = NOR of cubes),
/// matching BLIF's output-column convention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sop {
    /// Number of inputs every cube ranges over.
    pub num_inputs: usize,
    /// The product terms.
    pub cubes: Vec<Cube>,
    /// `true` = ON-set cover, `false` = OFF-set cover.
    pub polarity: bool,
}

impl Sop {
    /// Evaluates the cover.
    pub fn eval(&self, inputs: &[bool]) -> bool {
        let any = self.cubes.iter().any(|c| c.eval(inputs));
        if self.polarity {
            any
        } else {
            !any
        }
    }

    /// `true` if the cover denotes a constant function (no inputs or no
    /// cubes).
    pub fn is_constant(&self) -> bool {
        self.num_inputs == 0 || self.cubes.is_empty()
    }
}

/// Builds a balanced tree of AND/OR gates over `signals`.
///
/// Uses 3-input cells where possible, 2-input for the remainder; a single
/// signal is returned unchanged.
fn reduce_tree(
    netlist: &mut Netlist,
    mut signals: Vec<SignalId>,
    two: CellKind,
    three: CellKind,
) -> Result<SignalId, NetlistError> {
    assert!(!signals.is_empty(), "reduce_tree needs at least one signal");
    while signals.len() > 1 {
        let mut next = Vec::with_capacity(signals.len() / 2 + 1);
        let mut chunk = signals.as_slice();
        while !chunk.is_empty() {
            match chunk.len() {
                1 => {
                    next.push(chunk[0]);
                    chunk = &chunk[1..];
                }
                2 | 4 => {
                    next.push(netlist.add_gate(two, &chunk[..2])?);
                    chunk = &chunk[2..];
                }
                _ => {
                    next.push(netlist.add_gate(three, &chunk[..3])?);
                    chunk = &chunk[3..];
                }
            }
        }
        signals = next;
    }
    Ok(signals[0])
}

/// Synthesizes `sop` into gates of `netlist` over the given input signals,
/// returning the signal computing the cover.
///
/// Inverters are shared per input. A pass-through cover (single positive
/// literal) becomes a buffer so that the result is always a fresh,
/// nameable gate output.
///
/// # Errors
///
/// Propagates netlist construction errors. Degenerate covers —
/// a constant function, a tautological cube, or an `inputs` slice whose
/// length disagrees with `sop.num_inputs` — are rejected with
/// [`NetlistError::UnsynthesizableCover`]: the golden model is a pure
/// gate network with no constant generators.
pub fn synthesize_sop(
    netlist: &mut Netlist,
    sop: &Sop,
    inputs: &[SignalId],
) -> Result<SignalId, NetlistError> {
    if inputs.len() != sop.num_inputs {
        return Err(NetlistError::UnsynthesizableCover(format!(
            "cover ranges over {} inputs but {} signals were supplied",
            sop.num_inputs,
            inputs.len()
        )));
    }
    if sop.is_constant() {
        return Err(NetlistError::UnsynthesizableCover(
            "constant covers cannot be synthesized into the gate library".to_owned(),
        ));
    }

    // Shared inverters, created on demand.
    let mut inverted: Vec<Option<SignalId>> = vec![None; inputs.len()];
    let mut cube_outputs = Vec::with_capacity(sop.cubes.len());
    for cube in &sop.cubes {
        let mut lits = Vec::new();
        for (i, lit) in cube.0.iter().enumerate() {
            match lit {
                LitValue::DontCare => {}
                LitValue::One => lits.push(inputs[i]),
                LitValue::Zero => {
                    let inv = match inverted[i] {
                        Some(s) => s,
                        None => {
                            let s = netlist.add_gate(CellKind::Inv, &[inputs[i]])?;
                            inverted[i] = Some(s);
                            s
                        }
                    };
                    lits.push(inv);
                }
            }
        }
        // A cube with no literals is the constant 1 — the cover is constant
        // and was rejected above unless another cube narrows it; treat a
        // full don't-care cube as constant as well.
        if lits.is_empty() {
            return Err(NetlistError::UnsynthesizableCover(
                "tautological cube makes the cover constant".to_owned(),
            ));
        }
        cube_outputs.push(reduce_tree(netlist, lits, CellKind::And2, CellKind::And3)?);
    }

    let or_out = reduce_tree(netlist, cube_outputs, CellKind::Or2, CellKind::Or3)?;
    let result = if sop.polarity {
        // Ensure the node output is a fresh gate (nameable), even for a
        // single positive literal.
        if sop.cubes.len() == 1 && netlist.driver(or_out).is_none() {
            netlist.add_gate(CellKind::Buf, &[or_out])?
        } else {
            or_out
        }
    } else {
        netlist.add_gate(CellKind::Inv, &[or_out])?
    };
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;

    fn eval_netlist(n: &Netlist, out: SignalId, inputs: &[bool]) -> bool {
        // Tiny local evaluator (the real one lives in charfree-sim).
        let mut values = vec![false; n.num_signals()];
        for (i, &sig) in n.inputs().iter().enumerate() {
            values[sig.index()] = inputs[i];
        }
        for (_, gate) in n.gates() {
            let ins: Vec<bool> = gate.inputs().iter().map(|s| values[s.index()]).collect();
            values[gate.output().index()] = gate.kind().eval(&ins);
        }
        values[out.index()]
    }

    fn check_sop(sop: &Sop) {
        let mut n = Netlist::new("t");
        let inputs: Vec<SignalId> = (0..sop.num_inputs)
            .map(|i| n.add_input(format!("i{i}")).expect("fresh"))
            .collect();
        let out = synthesize_sop(&mut n, sop, &inputs).expect("synthesizable");
        n.mark_output(out).expect("ok");
        n.annotate_loads(&Library::test_library());
        for bits in 0..1u32 << sop.num_inputs {
            let asg: Vec<bool> = (0..sop.num_inputs).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(
                eval_netlist(&n, out, &asg),
                sop.eval(&asg),
                "sop={sop:?} bits={bits:b}"
            );
        }
    }

    #[test]
    fn cube_parse_and_eval() {
        let c = Cube::parse("01-").expect("valid");
        assert!(c.eval(&[false, true, false]));
        assert!(c.eval(&[false, true, true]));
        assert!(!c.eval(&[true, true, true]));
        assert!(Cube::parse("01x").is_none());
    }

    #[test]
    fn on_set_cover() {
        // f = a'b + c over 3 inputs.
        let sop = Sop {
            num_inputs: 3,
            cubes: vec![
                Cube::parse("01-").expect("ok"),
                Cube::parse("--1").expect("ok"),
            ],
            polarity: true,
        };
        check_sop(&sop);
    }

    #[test]
    fn off_set_cover() {
        // OFF-set {a=1,b=1}: f = !(ab).
        let sop = Sop {
            num_inputs: 2,
            cubes: vec![Cube::parse("11").expect("ok")],
            polarity: false,
        };
        check_sop(&sop);
    }

    #[test]
    fn single_positive_literal_gets_buffer() {
        let sop = Sop {
            num_inputs: 2,
            cubes: vec![Cube::parse("1-").expect("ok")],
            polarity: true,
        };
        let mut n = Netlist::new("t");
        let a = n.add_input("a").expect("fresh");
        let b = n.add_input("b").expect("fresh");
        let out = synthesize_sop(&mut n, &sop, &[a, b]).expect("ok");
        assert!(n.driver(out).is_some(), "must be a gate output");
        check_sop(&sop);
    }

    #[test]
    fn wide_cover_builds_trees() {
        // 7-input AND via one cube.
        let sop = Sop {
            num_inputs: 7,
            cubes: vec![Cube::parse("1111111").expect("ok")],
            polarity: true,
        };
        check_sop(&sop);
        // 5 cubes of single literals → OR tree.
        let sop = Sop {
            num_inputs: 5,
            cubes: (0..5)
                .map(|i| {
                    let mut s = vec!['-'; 5];
                    s[i] = '1';
                    Cube::parse(&s.into_iter().collect::<String>()).expect("ok")
                })
                .collect(),
            polarity: true,
        };
        check_sop(&sop);
    }

    #[test]
    fn inverters_are_shared() {
        // Two cubes both using a'.
        let sop = Sop {
            num_inputs: 2,
            cubes: vec![
                Cube::parse("01").expect("ok"),
                Cube::parse("00").expect("ok"),
            ],
            polarity: true,
        };
        let mut n = Netlist::new("t");
        let a = n.add_input("a").expect("fresh");
        let b = n.add_input("b").expect("fresh");
        let _ = synthesize_sop(&mut n, &sop, &[a, b]).expect("ok");
        let inv_count = n.gates().filter(|(_, g)| g.kind() == CellKind::Inv).count();
        assert_eq!(inv_count, 2, "one inverter per negated input, shared");
    }

    #[test]
    fn constant_cover_rejected() {
        let sop = Sop {
            num_inputs: 2,
            cubes: vec![],
            polarity: true,
        };
        let mut n = Netlist::new("t");
        let a = n.add_input("a").expect("fresh");
        let b = n.add_input("b").expect("fresh");
        let err = synthesize_sop(&mut n, &sop, &[a, b]).expect_err("constant cover");
        assert!(matches!(err, NetlistError::UnsynthesizableCover(_)));
        assert!(err.to_string().contains("constant"), "{err}");
    }

    #[test]
    fn mismatched_input_count_rejected() {
        let sop = Sop {
            num_inputs: 2,
            cubes: vec![Cube::parse("11").expect("ok")],
            polarity: true,
        };
        let mut n = Netlist::new("t");
        let a = n.add_input("a").expect("fresh");
        let err = synthesize_sop(&mut n, &sop, &[a]).expect_err("too few signals");
        assert!(matches!(err, NetlistError::UnsynthesizableCover(_)));
    }

    #[test]
    fn tautological_cube_rejected() {
        let sop = Sop {
            num_inputs: 2,
            cubes: vec![Cube::parse("--").expect("ok")],
            polarity: true,
        };
        let mut n = Netlist::new("t");
        let a = n.add_input("a").expect("fresh");
        let b = n.add_input("b").expect("fresh");
        let err = synthesize_sop(&mut n, &sop, &[a, b]).expect_err("tautology");
        assert!(err.to_string().contains("tautological"), "{err}");
    }
}
