//! Structural (gate-level) Verilog reader and writer.
//!
//! Covers the flat, mapped subset that EDA flows exchange after technology
//! mapping: one `module` of library-cell instances with named port
//! connections. Cells are the [`Library`](crate::Library) cells with pins
//! `a b c d` and output `O`, matching the BLIF `.gate` convention, e.g.
//!
//! ```verilog
//! module unit_u (x1, x2, g1, g2, g3);
//!   input x1, x2;
//!   output g1, g2, g3;
//!   inv u0 (.a(x1), .O(g1));
//!   inv u1 (.a(x2), .O(g2));
//!   or2 u2 (.a(x1), .b(x2), .O(g3));
//! endmodule
//! ```
//!
//! The writer emits exactly this shape; the reader additionally accepts
//! `wire` declarations, positional whitespace freedom, `//` line comments
//! and `/* … */` block comments.

use crate::library::CellKind;
use crate::netlist::{Netlist, NetlistError, SignalId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors produced by the Verilog reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerilogError {
    /// Lexical or structural problem, with a byte offset and description.
    Syntax(usize, String),
    /// Instance references a cell not in the library.
    UnknownCell(String),
    /// A net is used but neither an input nor driven by any instance.
    Undriven(String),
    /// Two drivers for one net, or an input driven by an instance.
    MultipleDrivers(String),
    /// Instances form a combinational cycle.
    Cycle(String),
    /// Netlist construction failed.
    Netlist(NetlistError),
}

impl fmt::Display for VerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerilogError::Syntax(pos, msg) => write!(f, "offset {pos}: {msg}"),
            VerilogError::UnknownCell(c) => write!(f, "unknown library cell `{c}`"),
            VerilogError::Undriven(n) => write!(f, "net `{n}` has no driver"),
            VerilogError::MultipleDrivers(n) => write!(f, "net `{n}` has multiple drivers"),
            VerilogError::Cycle(n) => write!(f, "combinational cycle through `{n}`"),
            VerilogError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl Error for VerilogError {}

impl From<NetlistError> for VerilogError {
    fn from(e: NetlistError) -> Self {
        VerilogError::Netlist(e)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Symbol(char),
}

fn lex(text: &str) -> Result<Vec<(usize, Token)>, VerilogError> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
        } else if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if c == '/' && bytes.get(i + 1) == Some(&b'*') {
            let close = text[i + 2..]
                .find("*/")
                .ok_or_else(|| VerilogError::Syntax(i, "unterminated block comment".into()))?;
            i += close + 4;
        } else if c.is_ascii_alphanumeric() || c == '_' || c == '\\' || c == '$' {
            let start = i;
            while i < bytes.len() {
                let ch = bytes[i] as char;
                if ch.is_ascii_alphanumeric() || ch == '_' || ch == '\\' || ch == '$' {
                    i += 1;
                } else {
                    break;
                }
            }
            tokens.push((start, Token::Ident(text[start..i].to_owned())));
        } else if "();,.".contains(c) {
            tokens.push((i, Token::Symbol(c)));
            i += 1;
        } else {
            return Err(VerilogError::Syntax(
                i,
                format!("unexpected character `{c}`"),
            ));
        }
    }
    Ok(tokens)
}

#[derive(Debug)]
struct Instance {
    cell: CellKind,
    /// `pins[pin_index]` = net name; last entry is the output.
    inputs: Vec<String>,
    output: String,
}

/// Parses a flat structural Verilog module into a mapped [`Netlist`].
///
/// # Errors
///
/// See [`VerilogError`]. Behavioral constructs (`assign`, `always`, …) are
/// rejected.
///
/// # Examples
///
/// ```
/// use charfree_netlist::verilog;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "
/// module tiny (a, b, y);
///   input a, b;   // operands
///   output y;
///   nand2 u0 (.a(a), .b(b), .O(y));
/// endmodule
/// ";
/// let netlist = verilog::parse(text)?;
/// assert_eq!(netlist.num_gates(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str) -> Result<Netlist, VerilogError> {
    let tokens = lex(text)?;
    let mut pos = 0usize;

    let err = |pos: usize, msg: &str, tokens: &[(usize, Token)]| -> VerilogError {
        let off = tokens
            .get(pos)
            .map(|(o, _)| *o)
            .unwrap_or_else(|| tokens.last().map(|(o, _)| *o).unwrap_or(0));
        VerilogError::Syntax(off, msg.to_owned())
    };
    let expect_ident =
        |pos: &mut usize, tokens: &[(usize, Token)]| -> Result<String, VerilogError> {
            match tokens.get(*pos) {
                Some((_, Token::Ident(s))) => {
                    *pos += 1;
                    Ok(s.clone())
                }
                _ => Err(err(*pos, "expected identifier", tokens)),
            }
        };
    let expect_sym =
        |pos: &mut usize, c: char, tokens: &[(usize, Token)]| -> Result<(), VerilogError> {
            match tokens.get(*pos) {
                Some((_, Token::Symbol(s))) if *s == c => {
                    *pos += 1;
                    Ok(())
                }
                _ => Err(err(*pos, &format!("expected `{c}`"), tokens)),
            }
        };
    let peek_sym = |pos: usize, c: char, tokens: &[(usize, Token)]| -> bool {
        matches!(tokens.get(pos), Some((_, Token::Symbol(s))) if *s == c)
    };

    // module <name> ( ports ) ;
    if expect_ident(&mut pos, &tokens)? != "module" {
        return Err(err(0, "expected `module`", &tokens));
    }
    let name = expect_ident(&mut pos, &tokens)?;
    expect_sym(&mut pos, '(', &tokens)?;
    while !peek_sym(pos, ')', &tokens) {
        let _ = expect_ident(&mut pos, &tokens)?;
        if peek_sym(pos, ',', &tokens) {
            pos += 1;
        }
    }
    expect_sym(&mut pos, ')', &tokens)?;
    expect_sym(&mut pos, ';', &tokens)?;

    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut instances: Vec<Instance> = Vec::new();

    loop {
        let keyword = expect_ident(&mut pos, &tokens)?;
        match keyword.as_str() {
            "endmodule" => break,
            "input" | "output" | "wire" => {
                loop {
                    let net = expect_ident(&mut pos, &tokens)?;
                    match keyword.as_str() {
                        "input" => inputs.push(net),
                        "output" => outputs.push(net),
                        _ => {} // wires are implied by use
                    }
                    if peek_sym(pos, ',', &tokens) {
                        pos += 1;
                    } else {
                        break;
                    }
                }
                expect_sym(&mut pos, ';', &tokens)?;
            }
            "assign" | "always" | "reg" => {
                return Err(err(
                    pos - 1,
                    "behavioral constructs are not supported (structural netlists only)",
                    &tokens,
                ));
            }
            cell_name => {
                let cell = CellKind::from_name(cell_name)
                    .ok_or_else(|| VerilogError::UnknownCell(cell_name.to_owned()))?;
                let _instance_name = expect_ident(&mut pos, &tokens)?;
                expect_sym(&mut pos, '(', &tokens)?;
                let mut bound: HashMap<String, String> = HashMap::new();
                while !peek_sym(pos, ')', &tokens) {
                    expect_sym(&mut pos, '.', &tokens)?;
                    let formal = expect_ident(&mut pos, &tokens)?;
                    expect_sym(&mut pos, '(', &tokens)?;
                    let actual = expect_ident(&mut pos, &tokens)?;
                    expect_sym(&mut pos, ')', &tokens)?;
                    if bound.insert(formal.clone(), actual).is_some() {
                        return Err(err(pos, &format!("pin `{formal}` bound twice"), &tokens));
                    }
                    if peek_sym(pos, ',', &tokens) {
                        pos += 1;
                    }
                }
                expect_sym(&mut pos, ')', &tokens)?;
                expect_sym(&mut pos, ';', &tokens)?;

                let output = bound
                    .remove("O")
                    .ok_or_else(|| err(pos, "instance missing output pin O", &tokens))?;
                let formals = ["a", "b", "c", "d"];
                let mut ins = Vec::with_capacity(cell.arity());
                for formal in formals.iter().take(cell.arity()) {
                    let actual = bound.remove(*formal).ok_or_else(|| {
                        err(pos, &format!("instance missing pin `{formal}`"), &tokens)
                    })?;
                    ins.push(actual);
                }
                if !bound.is_empty() {
                    return Err(err(pos, "instance has extra pins", &tokens));
                }
                instances.push(Instance {
                    cell,
                    inputs: ins,
                    output,
                });
            }
        }
    }

    elaborate(name, inputs, outputs, instances)
}

fn elaborate(
    name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    instances: Vec<Instance>,
) -> Result<Netlist, VerilogError> {
    // Single-driver check & index.
    let mut driver_of: HashMap<&str, usize> = HashMap::new();
    for (i, inst) in instances.iter().enumerate() {
        if driver_of.insert(inst.output.as_str(), i).is_some() || inputs.contains(&inst.output) {
            return Err(VerilogError::MultipleDrivers(inst.output.clone()));
        }
    }

    let mut netlist = Netlist::new(name);
    let mut sig: HashMap<String, SignalId> = HashMap::new();
    for input in &inputs {
        let id = netlist.add_input(input.clone())?;
        sig.insert(input.clone(), id);
    }

    // DFS topological elaboration (same scheme as the BLIF reader).
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Visiting,
        Done,
    }
    let mut marks: HashMap<usize, Mark> = HashMap::new();
    // Iterative DFS with an explicit stack of (instance, next_pin).
    for start in 0..instances.len() {
        if marks.get(&start) == Some(&Mark::Done) {
            continue;
        }
        let mut stack: Vec<usize> = vec![start];
        while let Some(&node) = stack.last() {
            match marks.get(&node) {
                Some(Mark::Done) => {
                    stack.pop();
                    continue;
                }
                Some(Mark::Visiting) => {
                    // All dependencies visited (or cycle) — try to emit.
                    let inst = &instances[node];
                    let mut ids = Vec::with_capacity(inst.inputs.len());
                    for pin in &inst.inputs {
                        match sig.get(pin.as_str()) {
                            Some(&id) => ids.push(id),
                            None => return Err(VerilogError::Cycle(pin.clone())),
                        }
                    }
                    let out = netlist.add_gate_named(inst.cell, &ids, inst.output.clone())?;
                    sig.insert(inst.output.clone(), out);
                    marks.insert(node, Mark::Done);
                    stack.pop();
                }
                None => {
                    marks.insert(node, Mark::Visiting);
                    let inst = &instances[node];
                    for pin in &inst.inputs {
                        if sig.contains_key(pin.as_str()) {
                            continue;
                        }
                        match driver_of.get(pin.as_str()) {
                            Some(&dep) => match marks.get(&dep) {
                                Some(Mark::Done) => {}
                                Some(Mark::Visiting) => {
                                    return Err(VerilogError::Cycle(pin.clone()));
                                }
                                None => stack.push(dep),
                            },
                            None => return Err(VerilogError::Undriven(pin.clone())),
                        }
                    }
                }
            }
        }
    }

    for out in &outputs {
        let id = sig
            .get(out.as_str())
            .copied()
            .ok_or_else(|| VerilogError::Undriven(out.clone()))?;
        netlist.mark_output(id)?;
    }
    netlist.validate().map_err(VerilogError::Netlist)?;
    Ok(netlist)
}

/// Serializes a mapped netlist as a flat structural Verilog module.
///
/// The output parses back through [`parse`] into a structurally identical
/// netlist.
pub fn write(netlist: &Netlist) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut ports: Vec<&str> = netlist
        .inputs()
        .iter()
        .map(|&s| netlist.signal_name(s))
        .collect();
    ports.extend(netlist.outputs().iter().map(|&s| netlist.signal_name(s)));
    let _ = writeln!(out, "module {} ({});", netlist.name(), ports.join(", "));
    let ins: Vec<&str> = netlist
        .inputs()
        .iter()
        .map(|&s| netlist.signal_name(s))
        .collect();
    let _ = writeln!(out, "  input {};", ins.join(", "));
    let outs: Vec<&str> = netlist
        .outputs()
        .iter()
        .map(|&s| netlist.signal_name(s))
        .collect();
    let _ = writeln!(out, "  output {};", outs.join(", "));

    let is_port: std::collections::HashSet<&str> =
        ins.iter().copied().chain(outs.iter().copied()).collect();
    let wires: Vec<&str> = netlist
        .gates()
        .map(|(_, g)| netlist.signal_name(g.output()))
        .filter(|n| !is_port.contains(n))
        .collect();
    if !wires.is_empty() {
        let _ = writeln!(out, "  wire {};", wires.join(", "));
    }

    let formals = ["a", "b", "c", "d"];
    for (i, (_, gate)) in netlist.gates().enumerate() {
        let mut pins: Vec<String> = gate
            .inputs()
            .iter()
            .enumerate()
            .map(|(pin, &s)| format!(".{}({})", formals[pin], netlist.signal_name(s)))
            .collect();
        pins.push(format!(".O({})", netlist.signal_name(gate.output())));
        let _ = writeln!(
            out,
            "  {} u{} ({});",
            gate.kind().name(),
            i,
            pins.join(", ")
        );
    }
    out.push_str("endmodule\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::Library;

    fn eval(n: &Netlist, inputs: &[bool]) -> Vec<bool> {
        let mut values = vec![false; n.num_signals()];
        for (i, &sigid) in n.inputs().iter().enumerate() {
            values[sigid.index()] = inputs[i];
        }
        for (_, gate) in n.gates() {
            let ins: Vec<bool> = gate.inputs().iter().map(|s| values[s.index()]).collect();
            values[gate.output().index()] = gate.kind().eval(&ins);
        }
        n.outputs().iter().map(|o| values[o.index()]).collect()
    }

    const MUX_V: &str = "
/* 2:1 mux from gates */
module m21 (s, a, b, y);
  input s, a, b;       // select + data
  output y;
  wire ns, t0, t1;
  inv  u0 (.a(s), .O(ns));
  and2 u1 (.a(ns), .b(a), .O(t0));
  and2 u2 (.a(s), .b(b), .O(t1));
  or2  u3 (.a(t0), .b(t1), .O(y));
endmodule
";

    #[test]
    fn parse_mux_and_check_function() {
        let n = parse(MUX_V).expect("valid verilog");
        assert_eq!(n.name(), "m21");
        assert_eq!(n.num_inputs(), 3);
        assert_eq!(n.num_gates(), 4);
        for bits in 0..8u32 {
            let asg = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let want = if asg[0] { asg[2] } else { asg[1] };
            assert_eq!(eval(&n, &asg)[0], want, "bits={bits:03b}");
        }
    }

    #[test]
    fn out_of_order_instances() {
        let text = "
module ooo (a, y);
  input a;
  output y;
  wire t;
  inv u1 (.a(t), .O(y));
  inv u0 (.a(a), .O(t));
endmodule
";
        let n = parse(text).expect("valid");
        assert_eq!(eval(&n, &[true]), vec![true]);
        assert_eq!(eval(&n, &[false]), vec![false]);
    }

    #[test]
    fn round_trip_benchmarks() {
        let library = Library::test_library();
        for netlist in [
            benchmarks::paper_unit(),
            benchmarks::decod(&library),
            benchmarks::cm85(&library),
        ] {
            let text = write(&netlist);
            let back = parse(&text).expect("round-trips");
            assert_eq!(back.num_gates(), netlist.num_gates(), "{}", netlist.name());
            assert_eq!(back.num_inputs(), netlist.num_inputs());
            for trial in 0..32u32 {
                let asg: Vec<bool> = (0..netlist.num_inputs())
                    .map(|i| trial.wrapping_mul(2654435761).wrapping_add(i as u32) & 8 != 0)
                    .collect();
                assert_eq!(eval(&back, &asg), eval(&netlist, &asg));
            }
        }
    }

    #[test]
    fn errors() {
        assert!(matches!(
            parse("module m (a); input a; assign b = a; endmodule"),
            Err(VerilogError::Syntax(..))
        ));
        assert!(matches!(
            parse("module m (a, y); input a; output y; bogus u0 (.a(a), .O(y)); endmodule"),
            Err(VerilogError::UnknownCell(_))
        ));
        assert!(matches!(
            parse("module m (a, y); input a; output y; inv u0 (.a(q), .O(y)); endmodule"),
            Err(VerilogError::Undriven(_))
        ));
        assert!(matches!(
            parse(
                "module m (a, y); input a; output y; \
                 inv u0 (.a(a), .O(y)); inv u1 (.a(a), .O(y)); endmodule"
            ),
            Err(VerilogError::MultipleDrivers(_))
        ));
        assert!(matches!(
            parse(
                "module m (a, y); input a; output y; wire t, u; \
                 inv u0 (.a(u), .O(t)); inv u1 (.a(t), .O(u)); \
                 and2 u2 (.a(t), .b(a), .O(y)); endmodule"
            ),
            Err(VerilogError::Cycle(_))
        ));
        assert!(matches!(
            parse("module m (a); input a; inv u0 (.a(a), .a(a)); endmodule"),
            Err(VerilogError::Syntax(..))
        ));
        let e = VerilogError::UnknownCell("x".into());
        assert!(e.to_string().contains('x'));
    }

    #[test]
    fn comments_and_whitespace() {
        let text = "module m(a,y);input a;output y;/* c */inv u0(.a(a),.O(y));//x\nendmodule";
        let n = parse(text).expect("valid");
        assert_eq!(n.num_gates(), 1);
    }
}
