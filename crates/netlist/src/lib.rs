//! # charfree-netlist — the gate-level golden model substrate
//!
//! The DATE'98 paper *"Characterization-Free Behavioral Power Modeling"*
//! assumes a **golden model**: "a gate-level netlist with backannotated
//! capacitances and zero propagation delays", where "input capacitances of
//! fan-out gates were used as load capacitances for the driving ones". This
//! crate provides everything around that golden model:
//!
//! * a test [`Library`] of static CMOS cells with per-pin input
//!   capacitances ([`CellKind`]);
//! * the [`Netlist`] DAG with structural validation, levelization and
//!   capacitive back-annotation ([`Netlist::annotate_loads`]);
//! * BLIF reading/writing ([`blif`]), including `.names` decomposition onto
//!   the library via [`sop`];
//! * MCNC-equivalent benchmark generators ([`benchmarks`]) reproducing the
//!   paper's Table-1 circuit set (see `DESIGN.md` §4 for the substitution
//!   rationale);
//! * physical-unit newtypes ([`units`]).
//!
//! ## Example
//!
//! ```
//! use charfree_netlist::{benchmarks, Library};
//!
//! let library = Library::test_library();
//! let cm85 = benchmarks::cm85(&library);
//! assert_eq!(cm85.num_inputs(), 11);      // `n` column of Table 1
//! assert!(cm85.num_gates() > 20);          // `N` column (same order)
//! assert!(cm85.total_load().femtofarads() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Parsers must degrade to error values, never panic on malformed input:
// `.unwrap()` is banned crate-wide; `.expect()` remains available for
// provably unreachable states and must spell out the invariant.
#![deny(clippy::unwrap_used)]

pub mod bench_format;
pub mod benchmarks;
pub mod blif;
pub mod libspec;
pub mod sop;
pub mod testutil;
pub mod units;
pub mod verilog;

mod library;
mod netlist;

pub use library::{CellKind, Library, ALL_CELLS};
pub use netlist::{Gate, GateId, Netlist, NetlistError, SignalId};
