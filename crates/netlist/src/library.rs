//! The test gate library.
//!
//! The paper maps MCNC circuits "on a test gate library" and uses the
//! "input capacitances of fan-out gates … as load capacitances for the
//! driving ones". This module defines such a library: a fixed set of static
//! CMOS cells with per-pin input capacitances (roughly proportional to the
//! gate's input transistor count, at a 1998-era 0.35 µm scale).

use crate::units::Capacitance;
use std::fmt;

/// The logic cells available for mapping.
///
/// # Examples
///
/// ```
/// use charfree_netlist::CellKind;
///
/// assert_eq!(CellKind::Nand2.arity(), 2);
/// assert!(!CellKind::Nand2.eval(&[true, true]));
/// assert!(CellKind::Nand2.eval(&[true, false]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 4-input NAND.
    Nand4,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 4-input NOR.
    Nor4,
    /// 2-input AND.
    And2,
    /// 3-input AND.
    And3,
    /// 2-input OR.
    Or2,
    /// 3-input OR.
    Or3,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer; pins are `[sel, a, b]`, output `sel ? b : a`.
    Mux2,
    /// AND-OR-invert: `!(p0·p1 + p2)`.
    Aoi21,
    /// OR-AND-invert: `!((p0+p1)·p2)`.
    Oai21,
}

/// All cells, in a stable order (useful for iteration and BLIF emission).
pub const ALL_CELLS: [CellKind; 17] = [
    CellKind::Inv,
    CellKind::Buf,
    CellKind::Nand2,
    CellKind::Nand3,
    CellKind::Nand4,
    CellKind::Nor2,
    CellKind::Nor3,
    CellKind::Nor4,
    CellKind::And2,
    CellKind::And3,
    CellKind::Or2,
    CellKind::Or3,
    CellKind::Xor2,
    CellKind::Xnor2,
    CellKind::Mux2,
    CellKind::Aoi21,
    CellKind::Oai21,
];

impl CellKind {
    /// Number of input pins.
    pub fn arity(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf => 1,
            CellKind::Nand2
            | CellKind::Nor2
            | CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2
            | CellKind::Xnor2 => 2,
            CellKind::Nand3
            | CellKind::Nor3
            | CellKind::And3
            | CellKind::Or3
            | CellKind::Mux2
            | CellKind::Aoi21
            | CellKind::Oai21 => 3,
            CellKind::Nand4 | CellKind::Nor4 => 4,
        }
    }

    /// Evaluates the cell function.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()`.
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.arity(), "wrong pin count for {self}");
        match self {
            CellKind::Inv => !inputs[0],
            CellKind::Buf => inputs[0],
            CellKind::Nand2 | CellKind::Nand3 | CellKind::Nand4 => !inputs.iter().all(|&b| b),
            CellKind::Nor2 | CellKind::Nor3 | CellKind::Nor4 => !inputs.iter().any(|&b| b),
            CellKind::And2 | CellKind::And3 => inputs.iter().all(|&b| b),
            CellKind::Or2 | CellKind::Or3 => inputs.iter().any(|&b| b),
            CellKind::Xor2 => inputs[0] != inputs[1],
            CellKind::Xnor2 => inputs[0] == inputs[1],
            CellKind::Mux2 => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
            CellKind::Aoi21 => !((inputs[0] && inputs[1]) || inputs[2]),
            CellKind::Oai21 => !((inputs[0] || inputs[1]) && inputs[2]),
        }
    }

    /// Word-parallel evaluation: each `u64` carries 64 independent
    /// simulation slots (used by the bit-parallel simulator).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()`.
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        assert_eq!(inputs.len(), self.arity(), "wrong pin count for {self}");
        match self {
            CellKind::Inv => !inputs[0],
            CellKind::Buf => inputs[0],
            CellKind::Nand2 => !(inputs[0] & inputs[1]),
            CellKind::Nand3 => !(inputs[0] & inputs[1] & inputs[2]),
            CellKind::Nand4 => !(inputs[0] & inputs[1] & inputs[2] & inputs[3]),
            CellKind::Nor2 => !(inputs[0] | inputs[1]),
            CellKind::Nor3 => !(inputs[0] | inputs[1] | inputs[2]),
            CellKind::Nor4 => !(inputs[0] | inputs[1] | inputs[2] | inputs[3]),
            CellKind::And2 => inputs[0] & inputs[1],
            CellKind::And3 => inputs[0] & inputs[1] & inputs[2],
            CellKind::Or2 => inputs[0] | inputs[1],
            CellKind::Or3 => inputs[0] | inputs[1] | inputs[2],
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::Mux2 => (inputs[0] & inputs[2]) | (!inputs[0] & inputs[1]),
            CellKind::Aoi21 => !((inputs[0] & inputs[1]) | inputs[2]),
            CellKind::Oai21 => !((inputs[0] | inputs[1]) & inputs[2]),
        }
    }

    /// The library name of the cell (lower-case, as written in BLIF
    /// `.gate` lines).
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Inv => "inv",
            CellKind::Buf => "buf",
            CellKind::Nand2 => "nand2",
            CellKind::Nand3 => "nand3",
            CellKind::Nand4 => "nand4",
            CellKind::Nor2 => "nor2",
            CellKind::Nor3 => "nor3",
            CellKind::Nor4 => "nor4",
            CellKind::And2 => "and2",
            CellKind::And3 => "and3",
            CellKind::Or2 => "or2",
            CellKind::Or3 => "or3",
            CellKind::Xor2 => "xor2",
            CellKind::Xnor2 => "xnor2",
            CellKind::Mux2 => "mux2",
            CellKind::Aoi21 => "aoi21",
            CellKind::Oai21 => "oai21",
        }
    }

    /// Looks a cell up by its library name.
    pub fn from_name(name: &str) -> Option<CellKind> {
        ALL_CELLS.iter().copied().find(|c| c.name() == name)
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A gate library: per-pin input capacitances for every [`CellKind`].
///
/// The default [`Library::test_library`] mimics the paper's unnamed "test
/// gate library": pin capacitance grows with the series transistor stack,
/// complex static CMOS gates (XOR, MUX) cost more per pin than simple NAND
/// pins.
#[derive(Debug, Clone)]
pub struct Library {
    name: String,
    /// Indexed by the position of the cell in [`ALL_CELLS`].
    pin_caps: Vec<Vec<Capacitance>>,
    /// Extra wiring capacitance charged to every driven net.
    wire_cap: Capacitance,
    /// Load presented by a primary output (pad / register input).
    output_load: Capacitance,
}

fn cell_index(kind: CellKind) -> usize {
    ALL_CELLS
        .iter()
        .position(|&c| c == kind)
        .expect("cell present in ALL_CELLS")
}

impl Library {
    /// The default test library (see module docs).
    ///
    /// # Examples
    ///
    /// ```
    /// use charfree_netlist::{CellKind, Library};
    /// let lib = Library::test_library();
    /// assert!(lib.pin_cap(CellKind::Xor2, 0).femtofarads() > 0.0);
    /// ```
    pub fn test_library() -> Self {
        let mut pin_caps = Vec::with_capacity(ALL_CELLS.len());
        for cell in ALL_CELLS {
            let per_pin = match cell {
                CellKind::Inv => 4.0,
                CellKind::Buf => 4.0,
                CellKind::Nand2 | CellKind::Nor2 => 5.0,
                CellKind::Nand3 | CellKind::Nor3 => 6.0,
                CellKind::Nand4 | CellKind::Nor4 => 7.0,
                CellKind::And2 | CellKind::Or2 => 5.0,
                CellKind::And3 | CellKind::Or3 => 6.0,
                CellKind::Xor2 | CellKind::Xnor2 => 9.0,
                CellKind::Mux2 => 8.0,
                CellKind::Aoi21 | CellKind::Oai21 => 6.0,
            };
            pin_caps.push(vec![Capacitance(per_pin); cell.arity()]);
        }
        Library {
            name: "test35".to_owned(),
            pin_caps,
            wire_cap: Capacitance(2.0),
            output_load: Capacitance(20.0),
        }
    }

    /// The library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input capacitance of pin `pin` of cell `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `pin >= kind.arity()`.
    pub fn pin_cap(&self, kind: CellKind, pin: usize) -> Capacitance {
        self.pin_caps[cell_index(kind)][pin]
    }

    /// Total input capacitance across all pins of `kind`.
    pub fn input_cap(&self, kind: CellKind) -> Capacitance {
        self.pin_caps[cell_index(kind)].iter().copied().sum()
    }

    /// Wiring capacitance added to every driven net.
    pub fn wire_cap(&self) -> Capacitance {
        self.wire_cap
    }

    /// Load presented by a primary output.
    pub fn output_load(&self) -> Capacitance {
        self.output_load
    }

    /// Overrides the per-pin capacitance of a cell (all pins).
    pub fn set_pin_cap(&mut self, kind: CellKind, cap: Capacitance) {
        let idx = cell_index(kind);
        for c in &mut self.pin_caps[idx] {
            *c = cap;
        }
    }

    /// Overrides the capacitance of one specific pin.
    ///
    /// # Panics
    ///
    /// Panics if `pin >= kind.arity()`.
    pub fn set_pin_cap_at(&mut self, kind: CellKind, pin: usize, cap: Capacitance) {
        self.pin_caps[cell_index(kind)][pin] = cap;
    }

    /// Renames the library.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Overrides the wire capacitance.
    pub fn set_wire_cap(&mut self, cap: Capacitance) {
        self.wire_cap = cap;
    }

    /// A canonical textual digest of everything that influences the loads
    /// a netlist annotated with this library will carry: the name, every
    /// per-pin capacitance in [`ALL_CELLS`] order, the wire capacitance
    /// and the primary-output load. Two libraries with equal fingerprints
    /// produce identical power models for the same netlist, so
    /// content-addressed caches key on this string.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("library {}\n", self.name);
        for cell in ALL_CELLS {
            let _ = write!(out, "cell {}", cell.name());
            for pin in 0..cell.arity() {
                let _ = write!(
                    out,
                    " {:016x}",
                    self.pin_cap(cell, pin).femtofarads().to_bits()
                );
            }
            out.push('\n');
        }
        let _ = writeln!(out, "wire {:016x}", self.wire_cap.femtofarads().to_bits());
        let _ = writeln!(
            out,
            "output {:016x}",
            self.output_load.femtofarads().to_bits()
        );
        out
    }

    /// Overrides the primary-output load.
    pub fn set_output_load(&mut self, cap: Capacitance) {
        self.output_load = cap;
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::test_library()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_eval_expectations() {
        for cell in ALL_CELLS {
            let n = cell.arity();
            // Must not panic for a correctly sized input slice.
            let _ = cell.eval(&vec![false; n]);
            let _ = cell.eval_word(&vec![0u64; n]);
        }
    }

    #[test]
    fn scalar_and_word_eval_agree() {
        for cell in ALL_CELLS {
            let n = cell.arity();
            for bits in 0..1u32 << n {
                let scalar: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                let words: Vec<u64> = scalar
                    .iter()
                    .map(|&b| if b { u64::MAX } else { 0 })
                    .collect();
                let want = cell.eval(&scalar);
                let got = cell.eval_word(&words);
                assert_eq!(got == u64::MAX, want, "{cell} bits={bits:b}");
                assert!(got == 0 || got == u64::MAX);
            }
        }
    }

    #[test]
    fn specific_functions() {
        assert!(CellKind::Aoi21.eval(&[false, false, false]));
        assert!(!CellKind::Aoi21.eval(&[true, true, false]));
        assert!(!CellKind::Aoi21.eval(&[false, false, true]));
        assert!(CellKind::Oai21.eval(&[false, false, true]));
        assert!(!CellKind::Oai21.eval(&[true, false, true]));
        assert!(CellKind::Mux2.eval(&[false, true, false]));
        assert!(!CellKind::Mux2.eval(&[true, true, false]));
    }

    #[test]
    fn names_roundtrip() {
        for cell in ALL_CELLS {
            assert_eq!(CellKind::from_name(cell.name()), Some(cell));
        }
        assert_eq!(CellKind::from_name("bogus"), None);
    }

    #[test]
    fn library_caps_are_positive_and_configurable() {
        let mut lib = Library::test_library();
        for cell in ALL_CELLS {
            for pin in 0..cell.arity() {
                assert!(lib.pin_cap(cell, pin).femtofarads() > 0.0);
            }
            assert!(lib.input_cap(cell).femtofarads() >= lib.pin_cap(cell, 0).femtofarads());
        }
        lib.set_pin_cap(CellKind::Inv, Capacitance(1.0));
        assert_eq!(lib.pin_cap(CellKind::Inv, 0), Capacitance(1.0));
        lib.set_wire_cap(Capacitance(0.0));
        assert_eq!(lib.wire_cap(), Capacitance(0.0));
        lib.set_output_load(Capacitance(11.0));
        assert_eq!(lib.output_load(), Capacitance(11.0));
    }

    #[test]
    fn fingerprint_tracks_every_load_knob() {
        let base = Library::test_library();
        assert_eq!(base.fingerprint(), Library::test_library().fingerprint());
        let mut lib = Library::test_library();
        lib.set_pin_cap_at(CellKind::Nand2, 1, Capacitance(42.0));
        assert_ne!(base.fingerprint(), lib.fingerprint());
        let mut lib = Library::test_library();
        lib.set_wire_cap(Capacitance(3.5));
        assert_ne!(base.fingerprint(), lib.fingerprint());
        let mut lib = Library::test_library();
        lib.set_output_load(Capacitance(1.0));
        assert_ne!(base.fingerprint(), lib.fingerprint());
        let mut lib = Library::test_library();
        lib.set_name("other");
        assert_ne!(base.fingerprint(), lib.fingerprint());
    }

    #[test]
    fn xor_costs_more_than_nand() {
        let lib = Library::test_library();
        assert!(
            lib.pin_cap(CellKind::Xor2, 0).femtofarads()
                > lib.pin_cap(CellKind::Nand2, 0).femtofarads()
        );
    }
}
