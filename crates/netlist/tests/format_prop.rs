//! Property tests over the three netlist interchange formats: random
//! mapped circuits must survive BLIF, structural Verilog and ISCAS-85
//! `.bench` round trips with identical simulated behavior.

use charfree_netlist::{bench_format, benchmarks, blif, verilog, Library, Netlist};
use proptest::prelude::*;

fn eval(n: &Netlist, inputs: &[bool]) -> Vec<bool> {
    let mut values = vec![false; n.num_signals()];
    for (i, &sigid) in n.inputs().iter().enumerate() {
        values[sigid.index()] = inputs[i];
    }
    for (_, gate) in n.gates() {
        let ins: Vec<bool> = gate.inputs().iter().map(|s| values[s.index()]).collect();
        values[gate.output().index()] = gate.kind().eval(&ins);
    }
    n.outputs().iter().map(|o| values[o.index()]).collect()
}

fn random_circuit(inputs: usize, gates: usize, seed: u64) -> Netlist {
    let library = Library::test_library();
    benchmarks::random_logic("fmt", inputs, gates, seed, &library)
}

fn check_equivalent(a: &Netlist, b: &Netlist, inputs: usize) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.num_inputs(), b.num_inputs());
    prop_assert_eq!(a.outputs().len(), b.outputs().len());
    // Exhaustive for small inputs, sampled otherwise.
    if inputs <= 8 {
        for bits in 0..1u32 << inputs {
            let asg: Vec<bool> = (0..inputs).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(eval(a, &asg), eval(b, &asg), "bits={:b}", bits);
        }
    } else {
        let mut state = 0x5a5a_5a5au64;
        for _ in 0..256 {
            let asg: Vec<bool> = (0..inputs)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    state >> 62 & 1 == 1
                })
                .collect();
            prop_assert_eq!(eval(a, &asg), eval(b, &asg));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn blif_round_trip(inputs in 3usize..9, gates in 4usize..40, seed in 0u64..10_000) {
        let original = random_circuit(inputs, gates, seed);
        let text = blif::write(&original);
        let back = blif::parse(&text).expect("blif round-trips");
        check_equivalent(&original, &back, inputs)?;
        // Structure is preserved exactly for .gate-based BLIF.
        prop_assert_eq!(back.num_gates(), original.num_gates());
    }

    #[test]
    fn verilog_round_trip(inputs in 3usize..9, gates in 4usize..40, seed in 0u64..10_000) {
        let original = random_circuit(inputs, gates, seed);
        let text = verilog::write(&original);
        let back = verilog::parse(&text).expect("verilog round-trips");
        check_equivalent(&original, &back, inputs)?;
        prop_assert_eq!(back.num_gates(), original.num_gates());
    }

    #[test]
    fn bench_round_trip(inputs in 3usize..9, gates in 4usize..40, seed in 0u64..10_000) {
        let original = random_circuit(inputs, gates, seed);
        let text = bench_format::write(&original);
        let back = bench_format::parse(original.name(), &text)
            .expect("bench round-trips");
        // Gate count may differ (AOI/OAI expand); behavior must not.
        check_equivalent(&original, &back, inputs)?;
    }

    #[test]
    fn cross_format_chain(inputs in 3usize..8, gates in 4usize..30, seed in 0u64..10_000) {
        // blif -> verilog -> bench -> blif, behavior invariant throughout.
        let original = random_circuit(inputs, gates, seed);
        let v = verilog::parse(&verilog::write(&original)).expect("verilog");
        let b = bench_format::parse("chain", &bench_format::write(&v)).expect("bench");
        let back = blif::parse(&blif::write(&b)).expect("blif");
        check_equivalent(&original, &back, inputs)?;
    }
}
