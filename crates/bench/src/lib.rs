//! Shared experiment harness for regenerating the paper's Table 1 and
//! Figures 7a/7b, used by the `table1`, `fig7a`, `fig7b` and `ablation`
//! binaries and referenced from the Criterion micro-benchmarks.
//!
//! Absolute numbers differ from the 1998 publication (different gate
//! library, different MCNC-equivalent netlists, different machine); the
//! *shape* — who wins, by what order of magnitude, where the trade-off
//! curves bend — is the reproduction target (see EXPERIMENTS.md).

#![warn(missing_docs)]
// `.unwrap()` is banned crate-wide; `.expect()` remains available for
// invariants with a stated justification, and tests are exempt.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use charfree_core::{
    evaluate, AddPowerModel, ConstantModel, Evaluation, LinearModel, Protocol, TrainingSet,
};
use charfree_netlist::{benchmarks, Library, Netlist};
use charfree_pipeline::{BuildOptions, PipelineCtx};
use charfree_sim::{statistics_grid, ZeroDelaySim};
use std::time::Instant;

/// Builds one model through the shared pipeline (no artifact store — the
/// harness times cold constructions on purpose).
pub fn build_model(netlist: &Netlist, options: BuildOptions) -> AddPowerModel {
    let mut ctx = PipelineCtx::new(Library::test_library()).with_options(options);
    ctx.build_model(netlist).expect("harness netlists build")
}

/// [`BuildOptions`] with just the paper's `MAX` ceiling set.
pub fn max_nodes_options(max_nodes: usize) -> BuildOptions {
    BuildOptions {
        max_nodes: Some(max_nodes),
        ..BuildOptions::default()
    }
}

/// The paper's per-circuit `MAX` budgets (Table 1, columns 7 and 11).
///
/// `(name, avg_max, ub_max)`. One deviation: the paper gives `x1` an
/// upper-bound budget of 50 000 nodes (and spends 10 143 UltraSparc-2
/// seconds building it); our MCNC-equivalent `x1` is symbolically smaller,
/// so the harness caps it at 10 000 to keep the full table regenerable in
/// minutes.
pub const TABLE1_MAX: [(&str, usize, usize); 13] = [
    ("alu2", 1000, 5000),
    ("alu4", 2000, 15000),
    ("cmb", 200, 1000),
    ("cm150", 1000, 2000),
    ("cm85", 500, 500),
    ("comp", 5000, 10000),
    ("decod", 200, 200),
    ("k2", 10000, 10000),
    ("mux", 1000, 5000),
    ("parity", 3000, 500),
    ("pcle", 5000, 10000),
    ("x1", 1000, 10000),
    ("x2", 200, 2500),
];

/// One row of the regenerated Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Circuit name.
    pub name: String,
    /// Primary inputs (`n`).
    pub inputs: usize,
    /// Gates (`N`).
    pub gates: usize,
    /// ARE (%) of the constant estimator on average power.
    pub con_are: f64,
    /// ARE (%) of the linear estimator on average power.
    pub lin_are: f64,
    /// ARE (%) of the analytical ADD model on average power.
    pub add_are: f64,
    /// `MAX` used for the average model.
    pub avg_max: usize,
    /// Construction CPU seconds for the average model.
    pub avg_cpu: f64,
    /// ARE (%) of the constant-max bound on maximum power.
    pub ub_con_are: f64,
    /// ARE (%) of the pattern-dependent ADD bound on maximum power.
    pub ub_add_are: f64,
    /// `MAX` used for the upper-bound model.
    pub ub_max: usize,
    /// Construction CPU seconds for the upper-bound model.
    pub ub_cpu: f64,
}

/// Experiment configuration shared by the binaries.
#[derive(Debug, Clone)]
pub struct Config {
    /// Vectors per simulation run (the paper uses 10 000).
    pub vectors: usize,
    /// Vectors in the characterization sample for `Con`/`Lin`.
    pub training_vectors: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            vectors: 10_000,
            training_vectors: 10_000,
            seed: 1998,
        }
    }
}

/// Computes one Table 1 row for `netlist`.
pub fn table1_row(netlist: &Netlist, avg_max: usize, ub_max: usize, config: &Config) -> Table1Row {
    let sim = ZeroDelaySim::new(netlist);
    let grid = statistics_grid();

    // Characterized baselines (paper protocol: sp = st = 0.5 sample).
    let training = TrainingSet::sample(&sim, config.training_vectors, config.seed);
    let con = ConstantModel::fit(&training);
    let lin = LinearModel::fit(&training);

    // Analytical average model.
    let t0 = Instant::now();
    let add = build_model(netlist, max_nodes_options(avg_max));
    let avg_cpu = t0.elapsed().as_secs_f64();
    let avg_eval = evaluate(
        &[&con, &lin, &add],
        &sim,
        &grid,
        config.vectors,
        Protocol::AveragePower,
        config.seed,
    );

    // Pattern-dependent upper bound + constant-max baseline.
    let t1 = Instant::now();
    let bound = build_model(
        netlist,
        BuildOptions {
            max_nodes: Some(ub_max),
            upper_bound: true,
            ..BuildOptions::default()
        },
    );
    let ub_cpu = t1.elapsed().as_secs_f64();
    let con_max = ConstantModel::from_capacitance(bound.max_capacitance(), "Con");
    let ub_eval = evaluate(
        &[&con_max, &bound],
        &sim,
        &grid,
        config.vectors,
        Protocol::MaximumPower,
        config.seed.wrapping_add(7),
    );

    Table1Row {
        name: netlist.name().to_owned(),
        inputs: netlist.num_inputs(),
        gates: netlist.num_gates(),
        con_are: avg_eval.are_percent(0).expect("model column"),
        lin_are: avg_eval.are_percent(1).expect("model column"),
        add_are: avg_eval.are_percent(2).expect("model column"),
        avg_max,
        avg_cpu,
        ub_con_are: ub_eval.are_percent(0).expect("model column"),
        ub_add_are: ub_eval.are_percent(1).expect("model column"),
        ub_max,
        ub_cpu,
    }
}

/// Formats rows in the paper's Table 1 layout.
pub fn format_table1(rows: &[Table1Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:8} {:>3} {:>5} | {:>8} {:>8} {:>8} {:>6} {:>8} | {:>8} {:>8} {:>6} {:>8}",
        "name",
        "n",
        "N",
        "Con(%)",
        "Lin(%)",
        "ADD(%)",
        "MAX",
        "CPU(s)",
        "Con(%)",
        "ADD(%)",
        "MAX",
        "CPU(s)"
    );
    let _ = writeln!(out, "{}", "-".repeat(110));
    for r in rows {
        let _ = writeln!(
            out,
            "{:8} {:>3} {:>5} | {:>8.1} {:>8.1} {:>8.1} {:>6} {:>8.2} | {:>8.1} {:>8.1} {:>6} {:>8.2}",
            r.name,
            r.inputs,
            r.gates,
            r.con_are,
            r.lin_are,
            r.add_are,
            r.avg_max,
            r.avg_cpu,
            r.ub_con_are,
            r.ub_add_are,
            r.ub_max,
            r.ub_cpu
        );
    }
    out
}

/// Runs the Fig. 7a sweep on `netlist` (the paper uses cm85 with
/// MAX = 500): per-`st` relative errors of Con, Lin and ADD at `sp = 0.5`.
pub fn fig7a(netlist: &Netlist, max_nodes: usize, config: &Config) -> Evaluation {
    let sim = ZeroDelaySim::new(netlist);
    let training = TrainingSet::sample(&sim, config.training_vectors, config.seed);
    let con = ConstantModel::fit(&training);
    let lin = LinearModel::fit(&training);
    let add = build_model(netlist, max_nodes_options(max_nodes));
    evaluate(
        &[&con, &lin, &add],
        &sim,
        &charfree_core::fig7a_grid(),
        config.vectors,
        Protocol::AveragePower,
        config.seed,
    )
}

/// One point of the Fig. 7b accuracy/size trade-off.
#[derive(Debug, Clone, Copy)]
pub struct Fig7bPoint {
    /// Requested node budget.
    pub max_nodes: usize,
    /// Actual model size after construction.
    pub size: usize,
    /// ARE (%) over the statistics grid.
    pub are: f64,
}

/// Runs the Fig. 7b sweep: ARE of progressively smaller ADD models,
/// derived by shrinking a single mother model (plus reference AREs for Con
/// and Lin). Returns `(points, con_are, lin_are)`.
pub fn fig7b(netlist: &Netlist, budgets: &[usize], config: &Config) -> (Vec<Fig7bPoint>, f64, f64) {
    let sim = ZeroDelaySim::new(netlist);
    let grid = statistics_grid();
    let training = TrainingSet::sample(&sim, config.training_vectors, config.seed);
    let con = ConstantModel::fit(&training);
    let lin = LinearModel::fit(&training);
    let reference = evaluate(
        &[&con, &lin],
        &sim,
        &grid,
        config.vectors,
        Protocol::AveragePower,
        config.seed,
    );

    let mut points = Vec::with_capacity(budgets.len());
    for &budget in budgets {
        let model = build_model(netlist, max_nodes_options(budget));
        let eval = evaluate(
            &[&model],
            &sim,
            &grid,
            config.vectors,
            Protocol::AveragePower,
            config.seed,
        );
        points.push(Fig7bPoint {
            max_nodes: budget,
            size: model.size(),
            are: eval.are_percent(0).expect("model column"),
        });
    }
    (
        points,
        reference.are_percent(0).expect("model column"),
        reference.are_percent(1).expect("model column"),
    )
}

/// Ablation configurations of DESIGN.md §5 and their AREs on one circuit.
pub fn ablation(netlist: &Netlist, max_nodes: usize, config: &Config) -> Vec<(String, f64)> {
    let sim = ZeroDelaySim::new(netlist);
    let grid = statistics_grid();
    let mut results = Vec::new();
    let variants: [(&str, BuildOptions); 5] = [
        (
            "full (mixture+gating+recalibration)",
            max_nodes_options(max_nodes),
        ),
        (
            "no leaf recalibration",
            BuildOptions {
                leaf_recalibration: false,
                ..max_nodes_options(max_nodes)
            },
        ),
        (
            "no diagonal gating",
            BuildOptions {
                diagonal_gating: false,
                ..max_nodes_options(max_nodes)
            },
        ),
        (
            "uniform collapse measure",
            BuildOptions {
                collapse_toggles: Some(vec![0.5]),
                ..max_nodes_options(max_nodes)
            },
        ),
        (
            "paper-plain (uniform, no gating, no recalibration)",
            BuildOptions {
                max_nodes: Some(max_nodes),
                ..BuildOptions::paper_plain()
            },
        ),
    ];
    for (name, options) in variants {
        let model = build_model(netlist, options);
        let eval = evaluate(
            &[&model],
            &sim,
            &grid,
            config.vectors,
            Protocol::AveragePower,
            config.seed,
        );
        results.push((name.to_owned(), eval.are_percent(0).expect("model column")));
    }
    results
}

/// The benchmark set restricted to names in `filter` (all when empty).
pub fn circuits(filter: &[String]) -> Vec<(Netlist, usize, usize)> {
    let library = Library::test_library();
    TABLE1_MAX
        .iter()
        .filter(|(name, _, _)| filter.is_empty() || filter.iter().any(|f| f == name))
        .map(|&(name, avg_max, ub_max)| {
            (
                benchmarks::by_name(name, &library).expect("known benchmark"),
                avg_max,
                ub_max,
            )
        })
        .collect()
}
