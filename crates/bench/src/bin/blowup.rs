//! The C6288 story: ADD blow-up on multiplier-like units and how bounded
//! construction degrades gracefully.
//!
//! The paper notes that "for some circuits (e.g., C6288) ADDs with more
//! than 100000 nodes were required to bring the ARE below 30%" — an
//! inherent limitation of the representation. Array multipliers are the
//! canonical blow-up family; this binary measures exact
//! switching-capacitance ADD size versus multiplier width, then shows the
//! bounded builder taming the same units at fixed budgets and what that
//! costs in accuracy.
//!
//! ```text
//! cargo run --release -p charfree-bench --bin blowup
//! ```

use charfree_bench::{build_model, max_nodes_options};
use charfree_core::{evaluate, Protocol};
use charfree_netlist::{benchmarks, Library};
use charfree_pipeline::BuildOptions;
use charfree_sim::{statistics_grid, ZeroDelaySim};
use std::time::Instant;

fn main() {
    let library = Library::test_library();

    println!("exact ADD size vs multiplier width (the C6288 effect):");
    println!(
        "{:>6} {:>4} {:>6} {:>10} {:>9}",
        "unit", "n", "gates", "exact size", "build(s)"
    );
    for width in [2usize, 3, 4, 5] {
        let netlist = benchmarks::mult(width, &library);
        let t = Instant::now();
        let model = build_model(&netlist, BuildOptions::default());
        println!(
            "{:>6} {:>4} {:>6} {:>10} {:>9.2}",
            netlist.name(),
            netlist.num_inputs(),
            netlist.num_gates(),
            model.size(),
            t.elapsed().as_secs_f64()
        );
    }

    println!("\nbounded construction on mult5 (exact ADD: ~400k nodes):");
    let netlist = benchmarks::mult(5, &library);
    let sim = ZeroDelaySim::new(&netlist);
    println!(
        "{:>7} {:>7} {:>9} {:>8}",
        "MAX", "size", "build(s)", "ARE(%)"
    );
    for max in [5000usize, 1000, 200, 50] {
        let t = Instant::now();
        let model = build_model(&netlist, max_nodes_options(max));
        let secs = t.elapsed().as_secs_f64();
        let eval = evaluate(
            &[&model],
            &sim,
            &statistics_grid(),
            2000,
            Protocol::AveragePower,
            17,
        );
        println!(
            "{:>7} {:>7} {:>9.2} {:>8.1}",
            max,
            model.size(),
            secs,
            eval.are_percent(0).expect("model column")
        );
    }
    println!("\nGraceful degradation: accuracy decays smoothly as the budget shrinks,");
    println!("instead of the build failing — the paper's motivation for approximating");
    println!("*during* construction (Fig. 6).");
}
