//! Regenerates `BENCH_serve.json`: request throughput and latency of the
//! `charfree-serve` micro-batching server under a closed-loop multi-
//! client load.
//!
//! ```text
//! cargo run --release -p charfree-bench --bin serve_throughput
//!     [--threads N]       closed-loop client threads (default 4)
//!     [--jobs N]          server evaluation workers (default 1)
//!     [--duration-secs S] measured window (default 5)
//!     [--vectors N]       Markov vectors per request (default 256)
//!     [--batch-window D]  coalescing window in microseconds (default 200)
//!     [--proto P]         wire protocol: json | binary (default json)
//!     [--reactor-threads N] reactor shards in the server (default 2)
//!     [--quick]           2 threads x 1 second (CI smoke run)
//!     [-o PATH]           output path (default BENCH_serve.json)
//! ```
//!
//! The output file is a JSON *array*: each run appends one entry, so the
//! file records a trajectory (threaded vs reactor front end, JSON vs
//! binary protocol) rather than a single number.
//!
//! The server runs in-process on a loopback port; clients are real TCP
//! connections, so the measured path includes the wire protocol, the
//! admission window and the dispatcher. Latency percentiles are measured
//! client-side per request; the mean batch fill comes from the server's
//! own `stats` histogram, which is how the run shows whether
//! cross-connection coalescing engaged.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use charfree_netlist::Library;
use charfree_serve::{
    Client, Proto, Request, Response, ServeConfig, Server, WireBuildOptions, WireEvalParams,
};

fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * pct).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn main() {
    let mut threads = 4usize;
    let mut jobs = 1usize;
    let mut duration_secs = 5u64;
    let mut vectors = 256usize;
    let mut window_us = 200u64;
    let mut proto = Proto::Json;
    let mut reactor_threads = 2usize;
    let mut out = String::from("BENCH_serve.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads takes a number")
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs takes a number")
            }
            "--duration-secs" => {
                duration_secs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--duration-secs takes a number")
            }
            "--vectors" => {
                vectors = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--vectors takes a number")
            }
            "--batch-window" => {
                window_us = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--batch-window takes microseconds")
            }
            "--proto" => {
                proto = args
                    .next()
                    .as_deref()
                    .map(Proto::parse)
                    .expect("--proto takes a value")
                    .expect("--proto takes json or binary")
            }
            "--reactor-threads" => {
                reactor_threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reactor-threads takes a number")
            }
            "--quick" => {
                threads = 2;
                duration_secs = 1;
            }
            "-o" => out = args.next().expect("-o takes a path"),
            other => panic!("unknown argument `{other}`"),
        }
    }
    assert!(jobs >= 1, "--jobs must be at least 1");
    assert!(threads >= 1, "--threads must be at least 1");
    assert!(reactor_threads >= 1, "--reactor-threads must be at least 1");

    let mut config = ServeConfig::new(Library::test_library());
    config.addr = "127.0.0.1:0".to_owned();
    config.jobs = jobs;
    config.batch_window = Duration::from_micros(window_us);
    config.max_inflight = threads.max(64);
    config.reactor_threads = reactor_threads;
    config.log = false;
    let server = Server::start(config).expect("server binds");
    let addr = server.addr().to_string();

    // Warm the model so the measured window is steady-state serving, not
    // one cold symbolic construction.
    let mut warm = Client::connect(&addr).expect("connects");
    match warm
        .request(&Request::Load {
            source: "decod".to_owned(),
            options: WireBuildOptions::default(),
        })
        .expect("load responds")
    {
        Response::Load { .. } => {}
        other => panic!("warm load failed: {other:?}"),
    }

    eprintln!(
        "[run ] {threads} client thread(s), {jobs} server worker(s), \
         {reactor_threads} reactor shard(s), {} protocol, \
         window {window_us}us, {vectors} vectors/request, {duration_secs}s",
        proto.name()
    );
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect_with(&addr, proto).expect("connects");
                let mut latencies_us: Vec<u64> = Vec::new();
                let mut ok = 0u64;
                let mut shed = 0u64;
                let mut seed = t as u64 * 1_000_003 + 1;
                while !stop.load(Ordering::Relaxed) {
                    seed += 1;
                    let request = Request::Eval {
                        source: "decod".to_owned(),
                        options: WireBuildOptions::default(),
                        params: WireEvalParams {
                            vectors,
                            sp: 0.5,
                            st: 0.4,
                            seed,
                            deadline_ms: None,
                        },
                    };
                    let sent = Instant::now();
                    match client.request(&request).expect("server responds") {
                        Response::Eval { .. } => {
                            latencies_us.push(sent.elapsed().as_micros() as u64);
                            ok += 1;
                        }
                        Response::Error { retry_after_ms, .. } => {
                            shed += 1;
                            std::thread::sleep(Duration::from_millis(retry_after_ms.unwrap_or(1)));
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
                (latencies_us, ok, shed)
            })
        })
        .collect();
    std::thread::sleep(Duration::from_secs(duration_secs));
    stop.store(true, Ordering::Relaxed);

    let mut latencies: Vec<u64> = Vec::new();
    let mut ok = 0u64;
    let mut shed = 0u64;
    for worker in workers {
        let (lat, o, s) = worker.join().expect("client thread");
        latencies.extend(lat);
        ok += o;
        shed += s;
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let rps = ok as f64 / elapsed;

    // The server's own view: batches executed and the lane-fill
    // histogram (64 linear buckets, bucket i = i+1 lanes occupied).
    let mut control = Client::connect(&addr).expect("connects");
    let stats = match control.request(&Request::Stats).expect("stats responds") {
        Response::Stats(payload) => payload,
        other => panic!("stats failed: {other:?}"),
    };
    let batches = stats.get("batches").and_then(|v| v.as_u64()).unwrap_or(0);
    let batched = stats
        .get("batched_requests")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    let mean_fill = stats
        .get("batch_fill")
        .and_then(|v| v.as_arr())
        .map(|buckets| {
            let (mut weighted, mut total) = (0u64, 0u64);
            for (i, c) in buckets.iter().enumerate() {
                let c = c.as_u64().unwrap_or(0);
                weighted += (i as u64 + 1) * c;
                total += c;
            }
            if total == 0 {
                0.0
            } else {
                weighted as f64 / total as f64
            }
        })
        .unwrap_or(0.0);
    control.request(&Request::Shutdown).expect("shutdown");
    server.wait();

    eprintln!(
        "       {rps:.0} req/s, p50 {p50}us, p99 {p99}us, \
         {batched} requests in {batches} batches (mean fill {mean_fill:.1} lanes)"
    );

    let entry = format!(
        "  {{\n    \"benchmark\": \"serve_throughput\",\n    \"circuit\": \"decod\",\n    \
         \"frontend\": \"reactor\",\n    \"proto\": \"{proto_name}\",\n    \
         \"reactor_threads\": {reactor_threads},\n    \
         \"client_threads\": {threads},\n    \"server_jobs\": {jobs},\n    \
         \"batch_window_us\": {window_us},\n    \"vectors_per_request\": {vectors},\n    \
         \"duration_secs\": {elapsed:.2},\n    \"requests_ok\": {ok},\n    \
         \"requests_shed\": {shed},\n    \"requests_per_sec\": {rps:.1},\n    \
         \"latency_us_p50\": {p50},\n    \"latency_us_p99\": {p99},\n    \
         \"batches\": {batches},\n    \"batched_requests\": {batched},\n    \
         \"mean_batch_fill_lanes\": {mean_fill:.2}\n  }}",
        proto_name = proto.name()
    );
    // The file is a trajectory: append this run to the existing array
    // (older single-object files from the thread-per-connection era are
    // wrapped into a one-element array first).
    let merged = match std::fs::read_to_string(&out) {
        Ok(prev) => {
            let prev = prev.trim();
            if let Some(body) = prev.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let body = body.trim().trim_end_matches(',');
                if body.is_empty() {
                    format!("[\n{entry}\n]\n")
                } else {
                    format!("[\n  {body},\n{entry}\n]\n")
                }
            } else if prev.starts_with('{') {
                format!("[\n  {prev},\n{entry}\n]\n")
            } else {
                format!("[\n{entry}\n]\n")
            }
        }
        Err(_) => format!("[\n{entry}\n]\n"),
    };
    std::fs::write(&out, merged).expect("write BENCH_serve.json");
    println!("appended to {out}");
}
