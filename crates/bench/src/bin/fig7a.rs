//! Regenerates the paper's Fig. 7a: relative error of the Con, Lin and ADD
//! power estimators on cm85 as a function of the input transition
//! probability `st` (at `sp = 0.5`, ADD built with `MAX = 500`).
//!
//! ```text
//! cargo run --release -p charfree-bench --bin fig7a [-- --vectors N]
//! ```

use charfree_bench::{fig7a, Config};
use charfree_netlist::{benchmarks, Library};

fn main() {
    let mut config = Config::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--vectors" {
            config.vectors = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--vectors takes a number");
        }
    }

    let library = Library::test_library();
    let cm85 = benchmarks::cm85(&library);
    let eval = fig7a(&cm85, 500, &config);

    println!(
        "Fig. 7a — RE(st) at sp = 0.5 on cm85, ADD MAX = 500 ({} vectors/run)",
        config.vectors
    );
    println!(
        "{:>5} {:>10} {:>10} {:>10}",
        "st", "Con RE(%)", "Lin RE(%)", "ADD RE(%)"
    );
    for p in &eval.points {
        println!(
            "{:>5.2} {:>10.1} {:>10.1} {:>10.1}",
            p.st,
            p.relative_errors[0] * 100.0,
            p.relative_errors[1] * 100.0,
            p.relative_errors[2] * 100.0
        );
    }
    println!(
        "ARE over the sweep: Con = {:.1}%  Lin = {:.1}%  ADD = {:.1}%",
        eval.are_percent(0).expect("model column"),
        eval.are_percent(1).expect("model column"),
        eval.are_percent(2).expect("model column")
    );
}
