//! Ablation study for the refinements of DESIGN.md §5: ARE of the ADD
//! model with each refinement switched off, on a few representative
//! circuits.
//!
//! ```text
//! cargo run --release -p charfree-bench --bin ablation [-- --vectors N]
//! ```

use charfree_bench::{ablation, Config};
use charfree_netlist::{benchmarks, Library};

fn main() {
    let mut config = Config {
        vectors: 4000,
        ..Default::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--vectors" {
            config.vectors = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--vectors takes a number");
        }
    }

    let library = Library::test_library();
    for (netlist, max) in [
        (benchmarks::cm85(&library), 500usize),
        (benchmarks::decod(&library), 200),
        (benchmarks::mux(&library), 1000),
    ] {
        println!(
            "== {} (MAX = {max}, {} vectors/run) ==",
            netlist.name(),
            config.vectors
        );
        for (name, are) in ablation(&netlist, max, &config) {
            println!("  {name:50} ARE = {are:6.1}%");
        }
    }
}
