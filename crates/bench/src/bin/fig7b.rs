//! Regenerates the paper's Fig. 7b: the accuracy/size trade-off of the
//! ADD power model on cm85 — ARE as a function of the node budget, with
//! the characterized Con and Lin AREs as horizontal reference lines.
//!
//! ```text
//! cargo run --release -p charfree-bench --bin fig7b [-- --vectors N]
//! ```

use charfree_bench::{fig7b, Config};
use charfree_netlist::{benchmarks, Library};

fn main() {
    let mut config = Config::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--vectors" {
            config.vectors = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--vectors takes a number");
        }
    }

    let library = Library::test_library();
    let cm85 = benchmarks::cm85(&library);
    let budgets = [5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000];
    let (points, con_are, lin_are) = fig7b(&cm85, &budgets, &config);

    println!(
        "Fig. 7b — ARE vs model size on cm85 ({} vectors/run)",
        config.vectors
    );
    println!("{:>6} {:>6} {:>10}", "MAX", "size", "ARE(%)");
    for p in &points {
        println!("{:>6} {:>6} {:>10.1}", p.max_nodes, p.size, p.are);
    }
    println!("reference: Con ARE = {con_are:.1}%   Lin ARE = {lin_are:.1}%");
}
