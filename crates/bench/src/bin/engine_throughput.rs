//! Regenerates `BENCH_engine.json`: evaluation throughput of the
//! compiled-kernel engine versus per-pattern arena traversal, per
//! circuit, with parallel scaling.
//!
//! ```text
//! cargo run --release -p charfree-bench --bin engine_throughput
//!     [-- circuit ...]  subset of {decod, cm85, cm150, mux}
//!     [--vectors N]     transitions per circuit (default 20000)
//!     [--jobs N]        parallel worker count (default 4)
//!     [--quick]         500 vectors (CI smoke run)
//!     [-o PATH]         output path (default BENCH_engine.json)
//!     [--cache-dir DIR] warm-load models from a content-addressed store
//! ```
//!
//! Every record carries a `parity` flag — the compiled sum is
//! cross-checked against the arena oracle, so a throughput win can never
//! silently come from evaluating a different function.

use charfree_engine::throughput::{measure, records_to_json};
use charfree_netlist::{benchmarks, Library, Netlist};
use charfree_pipeline::{ArtifactStore, BuildOptions, PipelineCtx};
use charfree_sim::MarkovSource;

/// `(netlist, max_nodes)` per measured circuit; budgets follow the
/// Table 1 configurations so the kernels are the models the accuracy
/// experiments actually use.
fn circuits(library: &Library, filter: &[String]) -> Vec<(Netlist, usize)> {
    let all = [
        (benchmarks::decod(library), 0),
        (benchmarks::cm85(library), 500),
        (benchmarks::cm150(library), 1000),
        (benchmarks::mux(library), 1000),
    ];
    all.into_iter()
        .filter(|(n, _)| filter.is_empty() || filter.iter().any(|f| f == n.name()))
        .collect()
}

fn main() {
    let mut vectors = 20_000usize;
    let mut jobs = 4usize;
    let mut out = String::from("BENCH_engine.json");
    let mut cache_dir: Option<String> = None;
    let mut filter: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--vectors" => {
                vectors = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--vectors takes a number");
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs takes a number");
            }
            "--quick" => vectors = 500,
            "-o" => out = args.next().expect("-o takes a path"),
            "--cache-dir" => cache_dir = Some(args.next().expect("--cache-dir takes a path")),
            name => filter.push(name.to_owned()),
        }
    }

    let library = Library::test_library();
    let mut records = Vec::new();
    let (mut cache_hits, mut cache_misses) = (0usize, 0usize);
    for (netlist, max) in circuits(&library, &filter) {
        eprintln!(
            "[run ] {} (n={}, N={}, max={})",
            netlist.name(),
            netlist.num_inputs(),
            netlist.num_gates(),
            if max == 0 {
                "exact".to_owned()
            } else {
                max.to_string()
            }
        );
        let mut options = BuildOptions::default();
        if max > 0 {
            options.max_nodes = Some(max);
        }
        let mut ctx = PipelineCtx::new(library.clone()).with_options(options);
        if let Some(dir) = &cache_dir {
            ctx = ctx.with_store(ArtifactStore::new(dir));
        }
        let model = ctx.build_model(&netlist).expect("known circuits build");
        cache_hits += ctx.telemetry.cache_hits();
        cache_misses += ctx.telemetry.cache_misses();
        let mut source =
            MarkovSource::new(model.num_inputs(), 0.5, 0.5, 7).expect("feasible statistics");
        let patterns = source.sequence(vectors.max(2));
        let record = measure(&model, &patterns, jobs);
        eprintln!(
            "       arena {:.0}/s, batch {:.0}/s ({:.1}x), {} jobs {:.0}/s ({:.1}x), parity {}",
            record.arena_pps,
            record.batch_pps,
            record.speedup_batch(),
            record.jobs,
            record.parallel_pps,
            record.speedup_parallel(),
            record.parity
        );
        records.push(record);
    }

    std::fs::write(&out, records_to_json(&records)).expect("write BENCH_engine.json");
    println!("wrote {} records to {out}", records.len());
    if cache_dir.is_some() {
        println!("artifact cache: {cache_hits} hit(s), {cache_misses} miss(es)");
    }
    if records.iter().any(|r| !r.parity) {
        eprintln!("error: at least one record failed the arena parity cross-check");
        std::process::exit(1);
    }
}
