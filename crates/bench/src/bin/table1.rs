//! Regenerates the paper's Table 1: per-circuit ARE of the Con / Lin / ADD
//! average-power estimators and of the constant vs pattern-dependent
//! upper bounds, with the `MAX` budgets and construction CPU time.
//!
//! ```text
//! cargo run --release -p charfree-bench --bin table1 [-- circuit ...]
//!     [--vectors N]   vectors per run (default 10000)
//!     [--quick]       2000 vectors and skip k2 / x1 (fast smoke run)
//! ```

use charfree_bench::{circuits, format_table1, table1_row, Config};

fn main() {
    let mut config = Config::default();
    let mut filter: Vec<String> = Vec::new();
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--vectors" => {
                config.vectors = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--vectors takes a number");
            }
            "--quick" => quick = true,
            name => filter.push(name.to_owned()),
        }
    }
    if quick {
        config.vectors = 2000;
        config.training_vectors = 2000;
    }

    let mut rows = Vec::new();
    for (netlist, avg_max, ub_max) in circuits(&filter) {
        if quick && matches!(netlist.name(), "k2" | "x1") {
            eprintln!("[skip] {} (--quick)", netlist.name());
            continue;
        }
        eprintln!(
            "[run ] {} (n={}, N={})",
            netlist.name(),
            netlist.num_inputs(),
            netlist.num_gates()
        );
        rows.push(table1_row(&netlist, avg_max, ub_max, &config));
    }

    println!(
        "Table 1 — average estimators and upper bounds ({} vectors/run)",
        config.vectors
    );
    println!("{}", format_table1(&rows));
    println!("(left block: ARE on average power; right block: ARE on maximum power)");
}
