//! Run-time model-evaluation benchmarks: the paper claims ADD evaluation
//! is "linear in the number of input variables" and negligible next to
//! gate-level simulation. This measures per-transition cost of the ADD
//! model, the characterized baselines, and the golden-model simulator
//! (scalar and trace/word-parallel forms).

use charfree_core::{ConstantModel, LinearModel, ModelBuilder, PowerModel, TrainingSet};
use charfree_netlist::{benchmarks, Library};
use charfree_sim::{MarkovSource, ZeroDelaySim};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn per_transition(c: &mut Criterion) {
    let library = Library::test_library();
    let netlist = benchmarks::cm85(&library);
    let sim = ZeroDelaySim::new(&netlist);
    let training = TrainingSet::sample(&sim, 2000, 3);
    let con = ConstantModel::fit(&training);
    let lin = LinearModel::fit(&training);
    let add = ModelBuilder::new(&netlist).max_nodes(500).build();

    let mut source = MarkovSource::new(netlist.num_inputs(), 0.5, 0.5, 9).expect("feasible");
    let patterns = source.sequence(1024);

    let mut group = c.benchmark_group("per_transition/cm85");
    group.throughput(Throughput::Elements(1023));

    group.bench_function("gate_level_sim", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for t in 0..patterns.len() - 1 {
                acc += sim
                    .switching_capacitance(&patterns[t], &patterns[t + 1])
                    .femtofarads();
            }
            black_box(acc)
        })
    });
    group.bench_function("gate_level_trace_word_parallel", |b| {
        b.iter(|| black_box(sim.switching_trace(&patterns)))
    });
    for (name, model) in [
        ("add_model", &add as &dyn PowerModel),
        ("lin_model", &lin),
        ("con_model", &con),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for t in 0..patterns.len() - 1 {
                    acc += model
                        .capacitance(&patterns[t], &patterns[t + 1])
                        .femtofarads();
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn scaling_with_inputs(c: &mut Criterion) {
    // ADD evaluation cost against circuit input count (linear walk).
    let library = Library::test_library();
    let mut group = c.benchmark_group("add_eval_scaling");
    for netlist in [
        benchmarks::decod(&library),  // n = 5
        benchmarks::cm85(&library),   // n = 11
        benchmarks::parity(&library), // n = 16
        benchmarks::comp(&library),   // n = 32
    ] {
        let model = ModelBuilder::new(&netlist).max_nodes(2000).build();
        let n = netlist.num_inputs();
        let xi = vec![false; n];
        let xf = vec![true; n];
        group.bench_function(format!("{}/n{}", netlist.name(), n), |b| {
            b.iter(|| black_box(model.capacitance(&xi, &xf)))
        });
    }
    group.finish();
}

criterion_group!(benches, per_transition, scaling_with_inputs);
criterion_main!(benches);
