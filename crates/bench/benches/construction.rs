//! Model-construction benchmarks (the paper's `CPU` columns): exact and
//! budget-bounded builds, both strategies, plus the DESIGN.md §5 ablation
//! of the approximation configuration.

use charfree_core::{ApproxStrategy, ModelBuilder};
use charfree_netlist::{benchmarks, Library};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn construction(c: &mut Criterion) {
    let library = Library::test_library();
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);

    // Exact builds (unbounded) for the small/fast circuits.
    for netlist in [
        benchmarks::paper_unit(),
        benchmarks::decod(&library),
        benchmarks::parity(&library),
    ] {
        group.bench_function(format!("exact/{}", netlist.name()), |b| {
            b.iter(|| black_box(ModelBuilder::new(&netlist).build()))
        });
    }

    // Budget-bounded builds (the Table 1 configurations).
    let cm85 = benchmarks::cm85(&library);
    for max in [50usize, 500, 2000] {
        group.bench_function(format!("bounded/cm85/max{max}"), |b| {
            b.iter(|| black_box(ModelBuilder::new(&cm85).max_nodes(max).build()))
        });
    }
    let mux = benchmarks::mux(&library);
    group.bench_function("bounded/mux/max1000", |b| {
        b.iter(|| black_box(ModelBuilder::new(&mux).max_nodes(1000).build()))
    });

    // Upper-bound strategy.
    group.bench_function("upper_bound/cm85/max500", |b| {
        b.iter(|| {
            black_box(
                ModelBuilder::new(&cm85)
                    .max_nodes(500)
                    .strategy(ApproxStrategy::UpperBound)
                    .build(),
            )
        })
    });

    group.finish();
}

fn ablation(c: &mut Criterion) {
    let library = Library::test_library();
    let cm85 = benchmarks::cm85(&library);
    let mut group = c.benchmark_group("construction_ablation");
    group.sample_size(10);

    group.bench_function("full_pipeline", |b| {
        b.iter(|| black_box(ModelBuilder::new(&cm85).max_nodes(500).build()))
    });
    group.bench_function("no_recalibration", |b| {
        b.iter(|| {
            black_box(
                ModelBuilder::new(&cm85)
                    .max_nodes(500)
                    .leaf_recalibration(false)
                    .build(),
            )
        })
    });
    group.bench_function("paper_plain", |b| {
        b.iter(|| {
            black_box(
                ModelBuilder::new(&cm85)
                    .max_nodes(500)
                    .collapse_toggles(&[0.5])
                    .leaf_recalibration(false)
                    .diagonal_gating(false)
                    .build(),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, construction, ablation);
criterion_main!(benches);
