//! Decision-diagram substrate benchmarks: core apply/ITE throughput,
//! statistics traversals, and the variable-ordering ablation
//! (interleaved vs grouped transition variables, DESIGN.md §5).

use charfree_core::{InputOrder, ModelBuilder, VariableOrdering};
use charfree_dd::{ChainMeasure, Manager, Var};
use charfree_netlist::{benchmarks, Library};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// An n-bit ripple-carry adder's carry-out BDD — a classic apply workload.
fn carry_out(m: &mut Manager, n: u32) -> charfree_dd::Bdd {
    let mut carry = m.bdd_false();
    for i in 0..n {
        let a = m.bdd_var(Var(2 * i));
        let b = m.bdd_var(Var(2 * i + 1));
        let ab = m.bdd_and(a, b);
        let axb = m.bdd_xor(a, b);
        let pc = m.bdd_and(axb, carry);
        carry = m.bdd_or(ab, pc);
    }
    carry
}

fn apply_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("dd_apply");
    for n in [8u32, 16, 24] {
        group.bench_function(format!("adder_carry/n{n}"), |b| {
            b.iter(|| {
                let mut m = Manager::new(2 * n);
                black_box(carry_out(&mut m, n))
            })
        });
    }
    group.finish();
}

fn stats_traversals(c: &mut Criterion) {
    let mut group = c.benchmark_group("dd_stats");
    let n = 20u32;
    let mut m = Manager::new(n);
    // A value-rich ADD: weighted sum of variables.
    let mut f = m.add_zero();
    for v in 0..n {
        let x = m.bdd_var(Var(v));
        let d = m.add_scale(x.as_add(), 1.0 + v as f64);
        f = m.add_plus(f, d);
    }
    group.bench_function("uniform_stats/weighted_sum_n20", |b| {
        b.iter(|| black_box(m.add_stats(f)))
    });
    group.bench_function("reach_probabilities/weighted_sum_n20", |b| {
        b.iter(|| black_box(m.reach_probabilities(f)))
    });
    let measure = ChainMeasure::interleaved_transitions(n / 2, 0.5, 0.2);
    group.bench_function("measured_profile/weighted_sum_n20", |b| {
        b.iter(|| black_box(m.add_measured_profile(f, &measure)))
    });
    group.finish();
}

fn ordering_ablation(c: &mut Criterion) {
    // Interleaved vs grouped transition variables, and fanin-DFS vs natural
    // input order — dominant factors of exact-ADD size.
    let library = Library::test_library();
    let cm85 = benchmarks::cm85(&library);
    let mut group = c.benchmark_group("ordering");
    group.sample_size(10);
    group.bench_function("interleaved_dfs/cm85_exact", |b| {
        b.iter(|| black_box(ModelBuilder::new(&cm85).build()))
    });
    group.bench_function("interleaved_natural/cm85_exact", |b| {
        b.iter(|| {
            black_box(
                ModelBuilder::new(&cm85)
                    .input_order(InputOrder::Natural)
                    .build(),
            )
        })
    });
    // Grouped ordering explodes on exact cm85; bound it for a fair timing.
    group.bench_function("grouped_dfs/cm85_max2000", |b| {
        b.iter(|| {
            black_box(
                ModelBuilder::new(&cm85)
                    .ordering(VariableOrdering::Grouped)
                    .max_nodes(2000)
                    .build(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, apply_ops, stats_traversals, ordering_ablation);
criterion_main!(benches);
