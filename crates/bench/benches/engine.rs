//! Compiled-kernel engine benchmarks: per-pattern arena traversal versus
//! packed-batch kernel evaluation (one thread and four), plus kernel
//! compilation cost. The `engine_throughput` binary reports the same
//! comparison as `BENCH_engine.json`; this harness gives it a Criterion
//! home next to the construction/evaluation suites.

use charfree_core::{ModelBuilder, PowerModel};
use charfree_engine::{Kernel, PatternBlock, TraceEngine};
use charfree_netlist::{benchmarks, Library};
use charfree_sim::MarkovSource;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn trace_throughput(c: &mut Criterion) {
    let library = Library::test_library();
    let netlist = benchmarks::cm85(&library);
    let model = ModelBuilder::new(&netlist).max_nodes(500).build();
    let kernel = Kernel::compile(&model);

    let mut source = MarkovSource::new(netlist.num_inputs(), 0.5, 0.5, 9).expect("feasible");
    let patterns = source.sequence(4096);
    let transitions = (patterns.len() - 1) as u64;

    let mut group = c.benchmark_group("engine_trace/cm85");
    group.throughput(Throughput::Elements(transitions));

    group.bench_function("arena_per_pattern", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for t in 0..patterns.len() - 1 {
                acc += model
                    .capacitance(&patterns[t], &patterns[t + 1])
                    .femtofarads();
            }
            black_box(acc)
        })
    });
    group.bench_function("kernel_batch_1_thread", |b| {
        let engine = TraceEngine::new(&kernel).jobs(1);
        b.iter(|| black_box(engine.evaluate(&patterns).sum_ff))
    });
    group.bench_function("kernel_batch_4_threads", |b| {
        let engine = TraceEngine::new(&kernel).jobs(4);
        b.iter(|| black_box(engine.evaluate(&patterns).sum_ff))
    });
    group.bench_function("kernel_batch_prepacked", |b| {
        let block = PatternBlock::from_patterns(&kernel, &patterns);
        let mut out = vec![0.0; block.len()];
        b.iter(|| {
            kernel.eval_batch_into(&block, &mut out);
            black_box(out[0])
        })
    });
    group.finish();
}

fn compile_cost(c: &mut Criterion) {
    let library = Library::test_library();
    let mut group = c.benchmark_group("engine_compile");
    for (netlist, max) in [
        (benchmarks::decod(&library), 0usize),
        (benchmarks::cm85(&library), 500),
    ] {
        let mut builder = ModelBuilder::new(&netlist);
        if max > 0 {
            builder = builder.max_nodes(max);
        }
        let model = builder.build();
        group.bench_function(netlist.name().to_owned(), |b| {
            b.iter(|| black_box(Kernel::compile(&model)))
        });
    }
    group.finish();
}

criterion_group!(benches, trace_throughput, compile_cost);
criterion_main!(benches);
