//! The resource governor and degradation ladder, rung by rung.
//!
//! Fault injection (`ModelBuilder::trip_after`) makes each rung fire
//! deterministically without constructing genuinely huge diagrams: the
//! first trip on a gate sheds partial sums, the second reorders
//! variables, the third (or any terminal resource) falls back to
//! constants for the remaining gates.

use charfree_core::{
    ApproxStrategy, BuildError, CancelToken, DegradationRung, ModelBuilder, PowerModel, Resource,
};
use charfree_netlist::{benchmarks, Library};
use charfree_sim::{ExhaustivePairs, MarkovSource, ZeroDelaySim};
use std::time::Duration;

#[test]
fn rung1_single_trip_sheds_partial_sums_and_recovers() {
    let lib = Library::test_library();
    let netlist = benchmarks::cm85(&lib);
    let model = ModelBuilder::new(&netlist)
        .trip_after(60)
        .try_build()
        .expect("one trip must degrade, not fail");
    let report = model.degradation().expect("a rung fired");
    assert_eq!(report.rungs[0], DegradationRung::ShedPartialSums);
    assert!(!report.fired(DegradationRung::ConstantFallback));
    assert_eq!(report.first_trip, Some(Resource::FaultInjection));
    assert_eq!(report.gates_folded, 0);
    // The model still evaluates everywhere.
    for (xi, xf) in ExhaustivePairs::new(11).take(256) {
        let c = model.capacitance(&xi, &xf).femtofarads();
        assert!(c.is_finite() && c >= 0.0);
    }
}

#[test]
fn rung2_second_trip_on_same_gate_reorders_variables() {
    let lib = Library::test_library();
    let netlist = benchmarks::cm85(&lib);
    // The first trip lands in the very first gate's phase A (nothing
    // committed), so the gate is retried; the second trip fires on the
    // first checkpoint of that retry, and the same gate failing twice
    // escalates to the reorder rung.
    let model = ModelBuilder::new(&netlist)
        .trip_after(1)
        .trip_after(1)
        .try_build()
        .expect("two trips must degrade, not fail");
    let report = model.degradation().expect("rungs fired");
    assert!(report.fired(DegradationRung::ShedPartialSums));
    assert!(report.fired(DegradationRung::ReorderVariables));
    assert!(!report.fired(DegradationRung::ConstantFallback));
    assert_eq!(report.firings(), 2);
    // A retried gate shows up in the per-gate counts.
    assert!(report.gate_retries.iter().any(|&(_, r)| r == 2));
    // Reordering permutes variables consistently, so the model still
    // matches gate-level simulation (nothing was approximated away by
    // the shed on this small unit... values may differ if it was; only
    // check validity).
    for (xi, xf) in ExhaustivePairs::new(11).take(256) {
        let c = model.capacitance(&xi, &xf).femtofarads();
        assert!(c.is_finite() && c >= 0.0);
    }
}

#[test]
fn rung3_third_trip_falls_back_to_constants() {
    let lib = Library::test_library();
    let netlist = benchmarks::decod(&lib);
    let model = ModelBuilder::new(&netlist)
        .strategy(ApproxStrategy::UpperBound)
        .trip_after(20)
        .trip_after(1)
        .trip_after(1)
        .try_build()
        .expect("three trips must degrade, not fail");
    let report = model.degradation().expect("rungs fired");
    assert!(report.fired(DegradationRung::ConstantFallback));
    assert!(report.gates_folded > 0, "{report}");
    assert!(report.constant_tail_ff > 0.0, "{report}");
    assert!(!model.report().exact);
    // The folded tail makes the model a conservative upper bound.
    let sim = ZeroDelaySim::new(&netlist);
    for (xi, xf) in ExhaustivePairs::new(5) {
        let exact = sim.switching_capacitance(&xi, &xf).femtofarads();
        let ub = model.capacitance(&xi, &xf).femtofarads();
        assert!(ub >= exact - 1e-9, "xi={xi:?} xf={xf:?}: {ub} < {exact}");
    }
}

#[test]
fn terminal_resources_skip_straight_to_constant_fallback() {
    let lib = Library::test_library();
    let netlist = benchmarks::cm85(&lib);
    let model = ModelBuilder::new(&netlist)
        .step_budget(100)
        .try_build()
        .expect("step exhaustion must degrade, not fail");
    let report = model.degradation().expect("a rung fired");
    assert_eq!(report.rungs[0], DegradationRung::ConstantFallback);
    assert_eq!(report.first_trip, Some(Resource::ApplySteps));
}

#[test]
fn cancelled_build_returns_promptly_with_total_load_model() {
    let lib = Library::test_library();
    let netlist = benchmarks::decod(&lib);
    let token = CancelToken::new();
    token.cancel();
    let model = ModelBuilder::new(&netlist)
        .cancel_token(token)
        .try_build()
        .expect("cancellation must degrade, not fail");
    let report = model.degradation().expect("a rung fired");
    assert_eq!(report.first_trip, Some(Resource::Cancelled));
    assert_eq!(report.gates_folded, netlist.num_gates());
    // Every gate folded: the model is the constant total load.
    let total = netlist.total_load().femtofarads();
    let xi = vec![false; 5];
    let xf = vec![true; 5];
    assert!((model.capacitance(&xi, &xf).femtofarads() - total).abs() < 1e-9);
}

#[test]
fn strict_mode_fails_instead_of_degrading() {
    let lib = Library::test_library();
    let netlist = benchmarks::cm85(&lib);
    let err = ModelBuilder::new(&netlist)
        .trip_after(60)
        .strict(true)
        .try_build()
        .expect_err("strict mode must surface the trip");
    match err {
        BuildError::BudgetExceeded { resource, .. } => {
            assert_eq!(resource, Resource::FaultInjection);
        }
        other => panic!("unexpected error: {other}"),
    }
}

#[test]
fn strict_deadline_fails_fast() {
    let lib = Library::test_library();
    let netlist = benchmarks::cm150(&lib);
    let started = std::time::Instant::now();
    let err = ModelBuilder::new(&netlist)
        .time_budget(Duration::from_millis(1))
        .strict(true)
        .try_build()
        .expect_err("an exhausted deadline must fail a strict build");
    assert!(matches!(
        err,
        BuildError::BudgetExceeded {
            resource: Resource::WallClock,
            ..
        }
    ));
    // "Within the deadline" up to checkpoint granularity: the budget is
    // polled every couple hundred recursion steps, so an over-deadline
    // build must notice within a small multiple of the deadline.
    assert!(started.elapsed() < Duration::from_secs(10));
}

#[test]
fn over_budget_build_of_wide_unit_degrades_not_panics() {
    // The acceptance scenario: a >=16-input unit under a node budget far
    // too small for its exact diagram.
    let lib = Library::test_library();
    let netlist = benchmarks::cm150(&lib); // 21 inputs
    assert!(netlist.num_inputs() >= 16);
    let model = ModelBuilder::new(&netlist)
        .node_budget(300)
        .strategy(ApproxStrategy::UpperBound)
        .try_build()
        .expect("an over-budget build must degrade, not fail");
    if let Some(report) = model.degradation() {
        assert!(!report.rungs.is_empty());
        assert_eq!(report.node_budget, Some(300));
    }
    // The finished model respects the budget as a size ceiling...
    assert!(model.size() <= 300, "size={}", model.size());
    // ...and still evaluates (random pattern sweep; 21 inputs rule out
    // exhaustive enumeration).
    let sim = ZeroDelaySim::new(&netlist);
    let mut source = MarkovSource::new(21, 0.5, 0.5, 42).expect("valid statistics");
    let seq = source.sequence(513);
    for pair in seq.windows(2) {
        let (xi, xf) = (&pair[0], &pair[1]);
        let exact = sim.switching_capacitance(xi, xf).femtofarads();
        let ub = model.capacitance(xi, xf).femtofarads();
        assert!(ub >= exact - 1e-9, "xi={xi:?} xf={xf:?}: {ub} < {exact}");
    }
    // Strict mode on the same configuration surfaces the trip instead.
    let strict = ModelBuilder::new(&netlist)
        .node_budget(300)
        .strict(true)
        .try_build();
    if let Some(report) = ModelBuilder::new(&netlist)
        .node_budget(300)
        .try_build()
        .expect("degrades")
        .degradation()
    {
        // The budget genuinely tripped, so strict must have failed.
        assert!(
            matches!(strict, Err(BuildError::BudgetExceeded { .. })),
            "budget tripped ({report}) but strict build returned Ok"
        );
    }
}

#[test]
fn degradation_is_not_persisted() {
    let lib = Library::test_library();
    let netlist = benchmarks::decod(&lib);
    let model = ModelBuilder::new(&netlist)
        .trip_after(20)
        .try_build()
        .expect("degrades");
    assert!(model.degradation().is_some());
    let mut buf = Vec::new();
    model.save(&mut buf).expect("serializes");
    let reloaded = charfree_core::AddPowerModel::load(&mut buf.as_slice()).expect("loads");
    assert!(reloaded.degradation().is_none());
}

mod conservative_property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        /// On random 8-input netlists, an upper-bound model degraded all
        /// the way to the constant-fallback rung stays a conservative
        /// upper bound of the exact gate-level capacitance.
        #[test]
        fn degraded_upper_bound_stays_conservative(
            seed in 0u32..1000,
            gates in 12usize..40,
        ) {
            let lib = Library::test_library();
            let name = format!("prop{seed}");
            let netlist = benchmarks::random_logic(&name, 8, gates, 3, &lib);
            let sim = ZeroDelaySim::new(&netlist);
            let model = ModelBuilder::new(&netlist)
                .strategy(ApproxStrategy::UpperBound)
                .trip_after(40)
                .trip_after(1)
                .trip_after(1)
                .try_build()
                .expect("budgeted build must not fail outside strict mode");
            for (xi, xf) in ExhaustivePairs::new(8).step_by(23) {
                let exact = sim.switching_capacitance(&xi, &xf).femtofarads();
                let ub = model.capacitance(&xi, &xf).femtofarads();
                prop_assert!(
                    ub >= exact - 1e-9,
                    "xi={:?} xf={:?}: {} < {}", xi, xf, ub, exact
                );
            }
        }
    }
}
