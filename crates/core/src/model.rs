//! Pattern-dependent power models and the ADD-backed analytical model.

use charfree_dd::{Add, Manager, NodeId, Var};
use charfree_netlist::units::{Capacitance, Energy, Voltage};
use std::fmt;
use std::time::Duration;

/// A pattern-dependent RT-level power model: given an input transition
/// `(xⁱ, xᶠ)` it predicts the switched capacitance of the macro.
///
/// Implementors include the paper's analytical [`AddPowerModel`] and the
/// characterized baselines
/// [`ConstantModel`](crate::ConstantModel) / [`LinearModel`](crate::LinearModel).
pub trait PowerModel {
    /// Predicted switched capacitance for the transition. May be negative
    /// for unconstrained fitted models (the paper's `Lin` can undershoot).
    fn capacitance(&self, xi: &[bool], xf: &[bool]) -> Capacitance;

    /// Predicted supply energy, `e = Vdd²·C` (Eq. 1).
    fn energy(&self, xi: &[bool], xf: &[bool], vdd: Voltage) -> Energy {
        Energy::from_switched(self.capacitance(xi, xf), vdd)
    }

    /// Predicted switched capacitance (fF) for every consecutive transition
    /// of a pattern stream: `out[t] = C(patterns[t], patterns[t+1])`.
    ///
    /// This is the batch entry point the evaluation sweep and the trace
    /// paths go through. The default implementation loops over
    /// [`PowerModel::capacitance`]; implementations with a faster bulk path
    /// (notably `charfree-engine`'s compiled kernels) override it.
    ///
    /// Returns an empty vector for fewer than two patterns.
    fn capacitance_trace(&self, patterns: &[Vec<bool>]) -> Vec<f64> {
        if patterns.len() < 2 {
            return Vec::new();
        }
        (0..patterns.len() - 1)
            .map(|t| {
                self.capacitance(&patterns[t], &patterns[t + 1])
                    .femtofarads()
            })
            .collect()
    }

    /// Short display name (`Con`, `Lin`, `ADD`, …).
    fn name(&self) -> &str;
}

/// How the `2n` transition variables are ordered in the decision diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VariableOrdering {
    /// `x₀ⁱ, x₀ᶠ, x₁ⁱ, x₁ᶠ, …` — pairs the two time points of each input;
    /// usually much smaller diagrams (default).
    #[default]
    Interleaved,
    /// `x₀ⁱ, …, x_{n−1}ⁱ, x₀ᶠ, …, x_{n−1}ᶠ` — the layout of the paper's
    /// Fig. 3.
    Grouped,
}

impl VariableOrdering {
    /// The diagram variable carrying input `i` at time `tⁱ`.
    #[inline]
    pub fn xi_var(self, i: usize, n: usize) -> Var {
        match self {
            VariableOrdering::Interleaved => Var((2 * i) as u32),
            VariableOrdering::Grouped => {
                let _ = n;
                Var(i as u32)
            }
        }
    }

    /// The diagram variable carrying input `i` at time `tᶠ`.
    #[inline]
    pub fn xf_var(self, i: usize, n: usize) -> Var {
        match self {
            VariableOrdering::Interleaved => Var((2 * i + 1) as u32),
            VariableOrdering::Grouped => Var((n + i) as u32),
        }
    }

    /// Writes the `2n`-variable assignment for `(xi, xf)` into `buf`
    /// (identity slot mapping).
    #[cfg(test)]
    pub(crate) fn fill_assignment(self, xi: &[bool], xf: &[bool], buf: &mut Vec<bool>) {
        let n = xi.len();
        buf.clear();
        buf.resize(2 * n, false);
        for i in 0..n {
            buf[self.xi_var(i, n).index() as usize] = xi[i];
            buf[self.xf_var(i, n).index() as usize] = xf[i];
        }
    }
}

/// Diagnostics from one model construction.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// Number of node-collapse invocations during the iterative build.
    pub approximation_rounds: usize,
    /// Total nodes collapsed across all rounds.
    pub nodes_collapsed: usize,
    /// Final diagram size (nodes, terminals included).
    pub final_size: usize,
    /// `true` if no approximation was ever applied — the model is exact and
    /// reproduces gate-level simulation for every pattern pair.
    pub exact: bool,
    /// Wall-clock construction time (the paper's `CPU` column).
    pub cpu: Duration,
}

impl fmt::Display for BuildReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} collapses in {} rounds, {:.2}s{}",
            self.final_size,
            self.nodes_collapsed,
            self.approximation_rounds,
            self.cpu.as_secs_f64(),
            if self.exact { " (exact)" } else { "" }
        )
    }
}

/// The paper's analytical model: an ADD over the `2n` transition variables
/// representing (an approximation of) `C(xⁱ, xᶠ)` from Eq. 4.
///
/// Built by [`ModelBuilder`](crate::ModelBuilder); evaluation is linear in
/// the number of inputs. The model owns its decision-diagram manager.
///
/// # Examples
///
/// ```
/// use charfree_core::{ModelBuilder, PowerModel};
/// use charfree_netlist::benchmarks::paper_unit;
///
/// let model = ModelBuilder::new(&paper_unit()).build();
/// // Fig. 2b / Example 1: C(11, 00) = 90 fF.
/// let c = model.capacitance(&[true, true], &[false, false]);
/// assert_eq!(c.femtofarads(), 90.0);
/// ```
#[derive(Debug)]
pub struct AddPowerModel {
    pub(crate) manager: Manager,
    pub(crate) root: Add,
    pub(crate) num_inputs: usize,
    pub(crate) ordering: VariableOrdering,
    /// `input_slots[i]` = the order slot of macro input `i`; slots permute
    /// inputs so that structurally related inputs sit close in the diagram
    /// order (fanin-DFS heuristic, see `ModelBuilder::input_order`).
    pub(crate) input_slots: Vec<usize>,
    /// The measure mixture under which collapses are steered (see
    /// `ModelBuilder::collapse_toggles`).
    pub(crate) collapse_mixture: Vec<(charfree_dd::ChainMeasure, f64)>,
    /// Analytic per-measure means of the exact switching capacitance
    /// (`Σⱼ Cⱼ·P_t(riseⱼ)`), kept so later [`AddPowerModel::shrink`] calls
    /// can recalibrate without the gate BDDs. `None` when the model was
    /// built with recalibration disabled.
    pub(crate) exact_means: Option<crate::calibrate::ExactMeans>,
    pub(crate) report: BuildReport,
    /// What the degradation ladder gave up, if a resource budget tripped
    /// during construction (`None` for clean builds).
    pub(crate) degradation: Option<crate::degrade::DegradationReport>,
    pub(crate) display_name: String,
}

impl AddPowerModel {
    /// Number of macro inputs `n` (the diagram has `2n` variables).
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The variable ordering the model was built with.
    pub fn ordering(&self) -> VariableOrdering {
        self.ordering
    }

    /// The input-to-slot permutation: `input_slots()[i]` is the order slot
    /// of macro input `i` (see `ModelBuilder::input_order`). Together with
    /// [`AddPowerModel::ordering`] and [`AddPowerModel::diagram`] this is
    /// everything an external evaluator (e.g. a `charfree-engine` compiled
    /// kernel) needs to map `(xⁱ, xᶠ)` pairs onto diagram variables.
    pub fn input_slots(&self) -> &[usize] {
        &self.input_slots
    }

    /// Construction diagnostics.
    pub fn report(&self) -> &BuildReport {
        &self.report
    }

    /// The degradation report, if a resource budget tripped during
    /// construction and the build finished on a coarser rung of the
    /// ladder. `None` means the model is exactly what the configuration
    /// asked for.
    pub fn degradation(&self) -> Option<&crate::degrade::DegradationReport> {
        self.degradation.as_ref()
    }

    /// Diagram size in nodes (terminals included, CUDD convention — the
    /// number the paper's `MAX` column constrains).
    pub fn size(&self) -> usize {
        self.manager.size(self.root.node())
    }

    /// The average switched capacitance over *all* `4ⁿ` transitions,
    /// computed symbolically (Eq. 6). For an average-collapsed model this is
    /// exactly the golden model's average (Section 3.1 invariant).
    pub fn average_capacitance(&self) -> Capacitance {
        Capacitance(self.manager.add_avg(self.root))
    }

    /// The maximum predicted switched capacitance over all transitions,
    /// computed symbolically. For an upper-bound model this equals the
    /// golden model's true worst case (max-collapse preserves the maximum).
    pub fn max_capacitance(&self) -> Capacitance {
        Capacitance(self.manager.add_max_value(self.root))
    }

    /// The model's expected switched capacitance under input statistics
    /// `(sp, st)`, computed **symbolically** (no simulation): one weighted
    /// traversal of the diagram under the pair-correlated transition
    /// measure.
    ///
    /// For an exact model this is the macro's true analytic average power
    /// at that operating point — the quantity a simulation campaign with
    /// 10 000 vectors estimates with sampling noise, obtained here in
    /// microseconds. Only supported for interleaved models.
    ///
    /// # Panics
    ///
    /// Panics if `sp`/`st` are outside `[0, 1]` or the model uses the
    /// grouped ordering (whose pair correlation is not chain-expressible).
    ///
    /// # Examples
    ///
    /// ```
    /// use charfree_core::ModelBuilder;
    /// use charfree_netlist::benchmarks::paper_unit;
    ///
    /// let model = ModelBuilder::new(&paper_unit()).build();
    /// let busy = model.expected_capacitance(0.5, 0.9);
    /// let idle = model.expected_capacitance(0.5, 0.05);
    /// assert!(busy > idle);
    /// ```
    pub fn expected_capacitance(&self, sp: f64, st: f64) -> Capacitance {
        assert!(
            self.ordering == VariableOrdering::Interleaved,
            "analytic expectations need the interleaved ordering"
        );
        let measure =
            charfree_dd::ChainMeasure::interleaved_transitions(self.num_inputs as u32, sp, st);
        let profile = self.manager.add_measured_profile(self.root, &measure);
        Capacitance(profile[&self.root.node()].stats.avg)
    }

    /// One transition achieving the model's maximum, as `(xi, xf)`.
    pub fn worst_case_transition(&self) -> (Vec<bool>, Vec<bool>) {
        let max = self.manager.add_max_value(self.root);
        // Level set of the max value, then one satisfying assignment.
        // `add_threshold` interns new terminals and needs `&mut`; cloning
        // the (plain-arena) manager keeps this query non-mutating.
        let mut m = self.manager.clone();
        let set = m.add_threshold(self.root, |v| v >= max);
        let assignment = m.pick_sat(set).expect("max level set is non-empty");
        let n = self.num_inputs;
        let mut xi = vec![false; n];
        let mut xf = vec![false; n];
        for i in 0..n {
            let slot = self.input_slots[i];
            xi[i] = assignment[self.ordering.xi_var(slot, n).index() as usize];
            xf[i] = assignment[self.ordering.xf_var(slot, n).index() as usize];
        }
        (xi, xf)
    }

    /// Access to the underlying manager and root for analysis (e.g. DOT
    /// export via [`Manager::to_dot`]).
    pub fn diagram(&self) -> (&Manager, NodeId) {
        (&self.manager, self.root.node())
    }

    /// Renames the model (affects [`PowerModel::name`] and report output).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.display_name = name.into();
    }

    /// Reorders the model's input pairs with the window search of
    /// [`charfree_dd::reorder::reorder_paired_windows`], keeping the
    /// `xⁱ/xᶠ` interleaving intact, and updates the input-to-slot mapping
    /// so evaluation is unchanged. Often shrinks the diagram (useful
    /// before [`AddPowerModel::shrink`] to spend the node budget on
    /// content rather than bad ordering).
    ///
    /// Only meaningful for interleaved models; a grouped model is returned
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `window` is outside `2..=4`.
    pub fn reorder_pairs(mut self, window: usize, passes: usize) -> Self {
        if self.ordering != VariableOrdering::Interleaved {
            return self;
        }
        let (root, placement) = charfree_dd::reorder::reorder_paired_windows(
            &mut self.manager,
            self.root.node(),
            window,
            passes,
        );
        self.root = Add::from_node(root);
        for slot in &mut self.input_slots {
            *slot = placement[*slot];
        }
        let kept = self.manager.compact(&[self.root.node()]);
        self.root = Add::from_node(kept[0]);
        self.report.final_size = self.manager.size(self.root.node());
        self
    }

    /// Shrinks an already-built model below `max_nodes` with one
    /// approximation pass — useful to derive a family of progressively
    /// smaller models from a single (possibly exact) build, as in the
    /// paper's Fig. 7b accuracy/size trade-off study.
    ///
    /// # Panics
    ///
    /// Panics if `max_nodes == 0`.
    pub fn shrink(mut self, max_nodes: usize, strategy: crate::ApproxStrategy) -> Self {
        let mixture = self.collapse_mixture.clone();
        let (root, outcome) = crate::approx::approximate_to_mixture(
            &mut self.manager,
            self.root,
            max_nodes,
            strategy,
            &mixture,
        );
        self.root = root;
        self.report.approximation_rounds += outcome.rounds;
        self.report.nodes_collapsed += outcome.nodes_collapsed;
        self.report.exact = self.report.exact && outcome.nodes_collapsed == 0;

        // Re-zero the no-transition diagonal (see ModelBuilder::build);
        // shrink to a reduced target first if the gated product would
        // exceed the budget.
        let n = self.num_inputs;
        if !self.report.exact && max_nodes >= 4 * n + 8 {
            let mut toggles = self.manager.bdd_false();
            for i in 0..n {
                let slot = self.input_slots[i];
                let a = self.manager.bdd_var(self.ordering.xi_var(slot, n));
                let b = self.manager.bdd_var(self.ordering.xf_var(slot, n));
                let t = self.manager.bdd_xor(a, b);
                toggles = self.manager.bdd_or(toggles, t);
            }
            let mut target = max_nodes;
            loop {
                let gated = self.manager.add_times(self.root, toggles.as_add());
                if self.manager.size(gated.node()) <= max_nodes {
                    self.root = gated;
                    break;
                }
                target = std::cmp::max(target * 3 / 4, 1);
                let (r, out) = crate::approx::approximate_to_mixture(
                    &mut self.manager,
                    self.root,
                    target,
                    strategy,
                    &mixture,
                );
                self.root = r;
                self.report.approximation_rounds += out.rounds;
                self.report.nodes_collapsed += out.nodes_collapsed;
            }
        }

        if let Some(means) = self.exact_means.clone() {
            if !self.report.exact && strategy == crate::ApproxStrategy::Average {
                self.root = crate::calibrate::recalibrate_leaves(
                    &mut self.manager,
                    self.root,
                    &mixture,
                    &means,
                    0.05,
                );
            }
        }

        let keep = self.manager.compact(&[self.root.node()]);
        self.root = charfree_dd::Add::from_node(keep[0]);
        self.report.final_size = self.manager.size(self.root.node());
        self
    }
}

impl PowerModel for AddPowerModel {
    fn capacitance(&self, xi: &[bool], xf: &[bool]) -> Capacitance {
        assert_eq!(xi.len(), self.num_inputs, "pattern width mismatch");
        assert_eq!(xf.len(), self.num_inputs, "pattern width mismatch");
        let n = self.num_inputs;
        let mut buf = vec![false; 2 * n];
        for i in 0..n {
            let slot = self.input_slots[i];
            buf[self.ordering.xi_var(slot, n).index() as usize] = xi[i];
            buf[self.ordering.xf_var(slot, n).index() as usize] = xf[i];
        }
        Capacitance(self.manager.add_eval(self.root, &buf))
    }

    fn name(&self) -> &str {
        &self.display_name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_maps_are_disjoint_and_complete() {
        for ordering in [VariableOrdering::Interleaved, VariableOrdering::Grouped] {
            let n = 5;
            let mut seen = std::collections::HashSet::new();
            for i in 0..n {
                assert!(seen.insert(ordering.xi_var(i, n)));
                assert!(seen.insert(ordering.xf_var(i, n)));
            }
            assert_eq!(seen.len(), 2 * n);
            assert!(seen.iter().all(|v| (v.index() as usize) < 2 * n));
        }
    }

    #[test]
    fn fill_assignment_round_trips() {
        let ordering = VariableOrdering::Interleaved;
        let xi = [true, false, true];
        let xf = [false, false, true];
        let mut buf = Vec::new();
        ordering.fill_assignment(&xi, &xf, &mut buf);
        for i in 0..3 {
            assert_eq!(buf[ordering.xi_var(i, 3).index() as usize], xi[i]);
            assert_eq!(buf[ordering.xf_var(i, 3).index() as usize], xf[i]);
        }
    }
}

#[cfg(test)]
mod reorder_tests {
    use crate::builder::{InputOrder, ModelBuilder};
    use crate::model::PowerModel;
    use charfree_netlist::{benchmarks, Library};
    use charfree_sim::{ExhaustivePairs, ZeroDelaySim};

    #[test]
    fn reorder_pairs_preserves_evaluation() {
        let library = Library::test_library();
        let netlist = benchmarks::decod(&library);
        let sim = ZeroDelaySim::new(&netlist);
        // Start from the worst input order so there is something to fix.
        let model = ModelBuilder::new(&netlist)
            .input_order(InputOrder::Custom(vec![4, 0, 3, 1, 2]))
            .build();
        let before = model.size();
        let reordered = model.reorder_pairs(3, 3);
        assert!(reordered.size() <= before, "reordering never grows");
        for (xi, xf) in ExhaustivePairs::new(5) {
            assert_eq!(
                reordered.capacitance(&xi, &xf),
                sim.switching_capacitance(&xi, &xf),
                "xi={xi:?} xf={xf:?}"
            );
        }
    }

    #[test]
    fn reorder_fixes_a_bad_order_substantially() {
        // cm85 with natural input order (operand bits far apart) is several
        // times larger than with a good order; pair reordering must close
        // a decent part of that gap.
        let library = Library::test_library();
        let netlist = benchmarks::cm85(&library);
        let bad = ModelBuilder::new(&netlist)
            .input_order(InputOrder::Natural)
            .build();
        let before = bad.size();
        let fixed = bad.reorder_pairs(3, 4);
        assert!(
            fixed.size() < before / 2,
            "pair reordering should at least halve cm85's natural-order ADD: {before} -> {}",
            fixed.size()
        );
        // Spot-check semantics.
        let sim = ZeroDelaySim::new(&netlist);
        for trial in 0..64u32 {
            let xi: Vec<bool> = (0..11).map(|i| trial >> (i % 6) & 1 == 1).collect();
            let xf: Vec<bool> = (0..11).map(|i| trial >> ((i + 3) % 6) & 1 == 1).collect();
            assert_eq!(
                fixed.capacitance(&xi, &xf),
                sim.switching_capacitance(&xi, &xf)
            );
        }
    }
}
