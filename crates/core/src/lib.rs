//! # charfree-core — characterization-free behavioral power modeling
//!
//! Rust implementation of the primary contribution of
//! *A. Bogliolo, L. Benini, G. De Micheli, "Characterization-Free
//! Behavioral Power Modeling", DATE 1998*:
//!
//! analytical, **white-box** construction of pattern-dependent RT-level
//! power models for combinational macros. Instead of fitting a black-box
//! model to simulation samples, the gate-level golden model's switching
//! capacitance
//!
//! ```text
//! C(xⁱ, xᶠ) = Σⱼ gⱼ'(xⁱ)·gⱼ(xᶠ)·Cⱼ          (Eq. 4)
//! ```
//!
//! is built **symbolically** as an algebraic decision diagram over the `2n`
//! transition variables ([`ModelBuilder`], paper Fig. 6), and complexity is
//! traded for accuracy by variance/MSE-ranked node collapsing
//! ([`ApproxStrategy`], Section 3):
//!
//! * [`ApproxStrategy::Average`] keeps average-power accuracy (and
//!   preserves the exact global average);
//! * [`ApproxStrategy::UpperBound`] yields **conservative pattern-dependent
//!   upper bounds** (and preserves the exact global maximum).
//!
//! The characterized baselines the paper compares against ([`ConstantModel`]
//! `Con`, [`LinearModel`] `Lin`), the characterization procedure
//! ([`TrainingSet`]), the accuracy harness ([`evaluate`]) and RTL
//! composition of per-macro bounds ([`RtlDesign`], Section 1.2) are all
//! included.
//!
//! ## Quickstart
//!
//! ```
//! use charfree_core::{ApproxStrategy, ModelBuilder, PowerModel};
//! use charfree_netlist::{benchmarks, Library};
//! use charfree_sim::ZeroDelaySim;
//!
//! let library = Library::test_library();
//! let cm85 = benchmarks::cm85(&library);
//!
//! // An exact analytical model: matches gate-level simulation everywhere.
//! let exact = ModelBuilder::new(&cm85).build();
//! let sim = ZeroDelaySim::new(&cm85);
//! let xi = vec![false; 11];
//! let xf = vec![true; 11];
//! assert_eq!(
//!     exact.capacitance(&xi, &xf),
//!     sim.switching_capacitance(&xi, &xf),
//! );
//!
//! // A 500-node model (the paper's cm85 configuration).
//! let small = ModelBuilder::new(&cm85).max_nodes(500).build();
//! assert!(small.size() <= 500);
//!
//! // A conservative pattern-dependent upper bound.
//! let bound = ModelBuilder::new(&cm85)
//!     .max_nodes(500)
//!     .strategy(ApproxStrategy::UpperBound)
//!     .build();
//! assert!(bound.capacitance(&xi, &xf) >= sim.switching_capacitance(&xi, &xf));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// `.unwrap()` is banned crate-wide; `.expect()` remains available for
// invariants with a stated justification, and tests are exempt.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod approx;
mod baselines;
mod builder;
mod calibrate;
mod degrade;
mod eval;
mod linalg;
mod lut;
mod model;
mod peak;
mod persist;
mod rtl;

pub use approx::{
    approximate_to, approximate_to_measured, approximate_to_mixture, approximate_to_unweighted,
    ApproxOutcome, ApproxStrategy,
};
pub use baselines::{ConstantModel, LinearModel, TrainingSet};
pub use builder::{InputOrder, ModelBuilder, PartialBuild};
pub use charfree_dd::{CancelToken, Resource};
pub use degrade::{BuildError, DegradationReport, DegradationRung};
pub use eval::{evaluate, fig7a_grid, Evaluation, Protocol, RunPoint};
pub use linalg::least_squares;
pub use lut::LutModel;
pub use model::{AddPowerModel, BuildReport, PowerModel, VariableOrdering};
pub use peak::{PeakLevel, Transition};
pub use rtl::{RtlDesign, RtlError, RtlInstance};
