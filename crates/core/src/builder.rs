//! Symbolic construction of the switching-capacitance ADD (paper Fig. 6).
//!
//! For every gate `g_j` of the golden model the builder forms the rising
//! condition `g_j'(xⁱ) · g_j(xᶠ)` as a BDD over the `2n` transition
//! variables, scales it by the gate's load `C_j`, and accumulates:
//!
//! ```text
//! C = 0
//! for j in 1..=N:
//!     deltaC = bdd_and(bdd_not(g_j(xi)), g_j(xf))
//!     deltaC = add_times(deltaC, C_j)
//!     if add_size(deltaC) > MAX: add_approx(deltaC, MAX)
//!     C = add_sum(C, deltaC)
//!     if add_size(C) > MAX: add_approx(C, MAX)
//! ```
//!
//! Approximation *during* construction is what keeps the build feasible for
//! units whose exact ADD explodes; the additive invariants
//! `avg(a)+avg(b)=avg(a+b)` and `max(a)+max(b) ≥ max(a+b)` (Section 3.1)
//! guarantee the chosen strategy's global property survives the summation.

use crate::approx::{approximate_to_mixture, ApproxStrategy};
use crate::calibrate::{recalibrate_leaves, ExactMeans};
use crate::model::{AddPowerModel, BuildReport, VariableOrdering};
use charfree_dd::{Add, Bdd, ChainMeasure, Manager};
use charfree_netlist::{CellKind, Netlist};
use std::time::Instant;

/// How macro inputs are arranged along the diagram's variable order.
///
/// Decision-diagram size is exquisitely order-sensitive: a comparator whose
/// `a` and `b` operand bits sit far apart blows up exponentially, while the
/// interleaved order stays linear. The default heuristic is the classic
/// fanin-DFS order (depth-first traversal from the primary outputs through
/// the gate fanins, recording primary inputs in first-visit order), which
/// clusters structurally related inputs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum InputOrder {
    /// Fanin-DFS heuristic from the outputs (default).
    #[default]
    FaninDfs,
    /// Keep the netlist's declaration order (ablation baseline).
    Natural,
    /// Explicit permutation: `custom[slot]` = input index placed at that
    /// slot.
    Custom(Vec<usize>),
}

/// Builder for [`AddPowerModel`]s.
///
/// # Examples
///
/// An upper-bound model capped at 50 nodes:
///
/// ```
/// use charfree_core::{ApproxStrategy, ModelBuilder, PowerModel};
/// use charfree_netlist::{benchmarks, Library};
///
/// let library = Library::test_library();
/// let cm85 = benchmarks::cm85(&library);
/// let bound = ModelBuilder::new(&cm85)
///     .max_nodes(50)
///     .strategy(ApproxStrategy::UpperBound)
///     .build();
/// assert!(bound.size() <= 50);
/// ```
#[derive(Debug)]
pub struct ModelBuilder<'a> {
    netlist: &'a Netlist,
    max_nodes: Option<usize>,
    strategy: ApproxStrategy,
    ordering: VariableOrdering,
    input_order: InputOrder,
    collapse_toggles: Vec<f64>,
    recalibrate: bool,
    diagonal_gating: bool,
    compact_every: usize,
}

/// Default toggle-probability family the collapse mixture spans; chosen to
/// cover the whole `st` sweep of the paper's Fig. 7a.
const DEFAULT_COLLAPSE_TOGGLES: [f64; 5] = [0.05, 0.15, 0.3, 0.5, 0.8];

impl<'a> ModelBuilder<'a> {
    /// Starts a builder with defaults: no size bound (exact model),
    /// [`ApproxStrategy::Average`], interleaved variables, fanin-DFS input
    /// order.
    pub fn new(netlist: &'a Netlist) -> Self {
        ModelBuilder {
            netlist,
            max_nodes: None,
            strategy: ApproxStrategy::Average,
            ordering: VariableOrdering::Interleaved,
            input_order: InputOrder::FaninDfs,
            collapse_toggles: DEFAULT_COLLAPSE_TOGGLES.to_vec(),
            recalibrate: true,
            diagonal_gating: true,
            compact_every: 16,
        }
    }

    /// Selects how macro inputs map to diagram order slots.
    pub fn input_order(mut self, order: InputOrder) -> Self {
        self.input_order = order;
        self
    }

    /// Sets the per-input flip probabilities spanned by the *collapse
    /// measure mixture*: approximation is steered to minimize the expected
    /// error averaged over transition distributions with these toggle
    /// rates (default `[0.05, 0.15, 0.3, 0.5, 0.8]`, covering the paper's
    /// `st` sweep).
    ///
    /// Passing `[0.5]` alone recovers the paper's uniform measure (under
    /// which the exact global average is preserved by construction, but
    /// accuracy away from `st = 0.5` degrades). Only meaningful together
    /// with [`VariableOrdering::Interleaved`]; the grouped ordering always
    /// uses the uniform measure.
    ///
    /// # Panics
    ///
    /// Panics if `toggles` is empty or any value is outside `(0, 1)`.
    pub fn collapse_toggles(mut self, toggles: &[f64]) -> Self {
        assert!(!toggles.is_empty(), "at least one toggle rate required");
        assert!(
            toggles.iter().all(|&t| t > 0.0 && t < 1.0),
            "toggle rates must be in (0,1)"
        );
        self.collapse_toggles = toggles.to_vec();
        self
    }

    /// Enables or disables analytic terminal recalibration of approximated
    /// average models (default: enabled). Recalibration shifts leaf values
    /// to cancel the model's mean bias across the collapse-measure family,
    /// computed entirely from the gate BDDs — no simulation involved (see
    /// `calibrate` module docs). Ignored for upper-bound models.
    pub fn leaf_recalibration(mut self, enabled: bool) -> Self {
        self.recalibrate = enabled;
        self
    }

    /// Enables or disables zeroing of the no-transition diagonal after
    /// approximation (default: enabled). `C(x, x) = 0` holds exactly in the
    /// golden model; gating restores it in approximated models at the cost
    /// of a 2n-node indicator chain. Disable together with
    /// [`ModelBuilder::leaf_recalibration`] and `collapse_toggles(&[0.5])`
    /// to reproduce the paper's plain configuration, under which the
    /// global average is preserved exactly (Section 3.1).
    pub fn diagonal_gating(mut self, enabled: bool) -> Self {
        self.diagonal_gating = enabled;
        self
    }

    /// Caps the diagram at `max` nodes (the paper's `MAX`), enabling
    /// approximation during construction.
    ///
    /// # Panics
    ///
    /// Panics if `max == 0`.
    pub fn max_nodes(mut self, max: usize) -> Self {
        assert!(max >= 1, "MAX must be at least 1");
        self.max_nodes = Some(max);
        self
    }

    /// Selects the approximation strategy (average-accurate vs conservative
    /// upper bound).
    pub fn strategy(mut self, strategy: ApproxStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Selects the transition-variable ordering.
    pub fn ordering(mut self, ordering: VariableOrdering) -> Self {
        self.ordering = ordering;
        self
    }

    /// How many gates to process between manager garbage collections.
    pub fn compact_every(mut self, gates: usize) -> Self {
        self.compact_every = gates.max(1);
        self
    }

    /// Runs the construction.
    ///
    /// Setting the `CHARFREE_BUILD_TRACE` environment variable makes the
    /// build print per-25-gate progress (arena size, pending partial-sum
    /// sizes, elapsed time) to stderr — useful when modeling large units.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails validation.
    pub fn build(self) -> AddPowerModel {
        self.netlist.validate().expect("netlist must be valid");
        let trace = std::env::var_os("CHARFREE_BUILD_TRACE").is_some();
        let start = Instant::now();
        let n = self.netlist.num_inputs();
        let input_slots = self.resolve_input_slots();
        let mut m = Manager::new(2 * n as u32);
        for i in 0..n {
            let name = self.netlist.signal_name(self.netlist.inputs()[i]);
            let slot = input_slots[i];
            m.set_var_name(self.ordering.xi_var(slot, n), format!("{name}^i"));
            m.set_var_name(self.ordering.xf_var(slot, n), format!("{name}^f"));
        }

        // Node-function BDDs per signal, over the xi and xf variable blocks.
        let mut sig_i: Vec<Option<Bdd>> = vec![None; self.netlist.num_signals()];
        let mut sig_f: Vec<Option<Bdd>> = vec![None; self.netlist.num_signals()];
        for (i, &sig) in self.netlist.inputs().iter().enumerate() {
            let slot = input_slots[i];
            sig_i[sig.index()] = Some(m.bdd_var(self.ordering.xi_var(slot, n)));
            sig_f[sig.index()] = Some(m.bdd_var(self.ordering.xf_var(slot, n)));
        }

        // Remaining-use counts so dead node functions can be collected.
        let mut uses = vec![0usize; self.netlist.num_signals()];
        for (_, gate) in self.netlist.gates() {
            for &s in gate.inputs() {
                uses[s.index()] += 1;
            }
        }

        // Binary-counter accumulation: `pending[r]` holds a partial sum of
        // 2^r gate contributions. Merging equal-rank sums keeps operand
        // supports correlated (nearby gates) and cuts the number of
        // size-triggered approximation passes from O(N) to O(N / 2^r0),
        // which dominates construction time on large units. Plain
        // left-fold summation is the paper's literal Fig. 6; '+' is
        // associative, so the result is equivalent up to approximation
        // scheduling.
        let mut pending: Vec<Option<Add>> = Vec::new();
        // Terminal quantization step: switching-capacitance ADDs are
        // value-driven (every distinct partial sum of loads is a terminal),
        // and merging sums over disjoint supports multiplies terminal
        // sets. Snapping terminals to a fine grid (2^-14 of the total
        // load) bounds that growth with a relative error ~6e-5 — far below
        // model accuracy. The upper-bound strategy rounds *up*, preserving
        // conservativeness.
        let quantum = (self.netlist.total_load().femtofarads() / 16384.0).max(1e-9);
        let weight = 1.0 / self.collapse_toggles.len() as f64;
        let mixture: Vec<(ChainMeasure, f64)> = match self.ordering {
            VariableOrdering::Interleaved => self
                .collapse_toggles
                .iter()
                .map(|&t| {
                    (
                        ChainMeasure::interleaved_transitions(n as u32, 0.5, t),
                        weight,
                    )
                })
                .collect(),
            VariableOrdering::Grouped => vec![(ChainMeasure::uniform(2 * n as u32), 1.0)],
        };
        let mut c = m.add_zero();
        let mut rounds = 0usize;
        let mut collapsed = 0usize;
        // Analytic per-measure means of the exact switching capacitance,
        // Σⱼ Cⱼ·P_t(riseⱼ), accumulated gate by gate for recalibration
        // (during this build and any later `shrink`).
        let mut exact_means = ExactMeans(vec![0.0; mixture.len()]);
        for (gate_no, (_, gate)) in self.netlist.gates().enumerate() {
            let pins_i: Vec<Bdd> = gate
                .inputs()
                .iter()
                .map(|s| sig_i[s.index()].expect("topological order"))
                .collect();
            let pins_f: Vec<Bdd> = gate
                .inputs()
                .iter()
                .map(|s| sig_f[s.index()].expect("topological order"))
                .collect();
            let gi = gate_bdd(&mut m, gate.kind(), &pins_i);
            let gf = gate_bdd(&mut m, gate.kind(), &pins_f);
            sig_i[gate.output().index()] = Some(gi);
            sig_f[gate.output().index()] = Some(gf);

            // deltaC = (NOT g(xi)) AND g(xf), scaled by the load.
            let not_gi = m.bdd_not(gi);
            let rise = m.bdd_and(not_gi, gf);
            if self.recalibrate {
                for ((measure, _), mean) in mixture.iter().zip(&mut exact_means.0) {
                    let profile = m.add_measured_profile(rise.as_add(), measure);
                    *mean += gate.load().femtofarads()
                        * profile[&rise.node()].stats.avg;
                }
            }
            let mut delta = m.add_scale(rise.as_add(), gate.load().femtofarads());
            // Working slack: let intermediates grow to 2×MAX before
            // collapsing back to MAX. Halves the number of approximation
            // passes (their cost dominates large builds) without changing
            // the final budget, which the post-loop pass enforces.
            if let Some(max) = self.max_nodes {
                if m.size(delta.node()) > 2 * max {
                    let (d, out) =
                        approximate_to_mixture(&mut m, delta, max, self.strategy, &mixture);
                    delta = d;
                    rounds += out.rounds;
                    collapsed += out.nodes_collapsed;
                }
            }
            // Carry-propagate the new contribution through the counter.
            let mut cur = delta;
            let mut rank = 0usize;
            loop {
                if rank == pending.len() {
                    pending.push(None);
                }
                match pending[rank].take() {
                    None => {
                        pending[rank] = Some(cur);
                        break;
                    }
                    Some(other) => {
                        cur = merge_bounded(
                            &mut m,
                            other,
                            cur,
                            self.max_nodes,
                            quantum,
                            self.strategy,
                            &mixture,
                            &mut rounds,
                            &mut collapsed,
                        );
                        rank += 1;
                    }
                }
            }

            // Release node functions that no later gate consumes.
            for &s in gate.inputs() {
                let u = &mut uses[s.index()];
                *u -= 1;
                if *u == 0 {
                    sig_i[s.index()] = None;
                    sig_f[s.index()] = None;
                }
            }

            m.clear_caches();
            if (gate_no + 1) % self.compact_every == 0 {
                compact_live(&mut m, &mut sig_i, &mut sig_f, &mut pending);
            }
            if trace && gate_no % 25 == 24 {
                eprintln!(
                    "[build] gate {}/{} arena={} pending={:?} elapsed={:.1}s",
                    gate_no + 1,
                    self.netlist.num_gates(),
                    m.arena_len(),
                    pending
                        .iter()
                        .map(|p| p.map(|a| m.size(a.node())).unwrap_or(0))
                        .collect::<Vec<_>>(),
                    start.elapsed().as_secs_f64()
                );
            }
        }

        // Fold the counter into the final accumulator.
        for slot in pending.into_iter().flatten() {
            c = merge_bounded(
                &mut m,
                c,
                slot,
                self.max_nodes,
                quantum,
                self.strategy,
                &mixture,
                &mut rounds,
                &mut collapsed,
            );
        }

        // Enforce the budget exactly before gating/recalibration.
        if let Some(max) = self.max_nodes {
            if m.size(c.node()) > max {
                let (c2, out) = approximate_to_mixture(&mut m, c, max, self.strategy, &mixture);
                c = c2;
                rounds += out.rounds;
                collapsed += out.nodes_collapsed;
            }
        }

        // Restore exactness on the no-transition diagonal: C(x, x) = 0 for
        // every x (no signal can rise without an input transition), but
        // collapse leaves make the diagonal positive, which wrecks relative
        // accuracy at low transition activity where most cycles are idle.
        // Gating with the "any input toggles" indicator (a 2n-node BDD
        // chain) zeroes the diagonal exactly; values off the diagonal are
        // untouched, so average- and upper-bound properties are preserved.
        // Gating costs at least a 2n-node chain; below that budget the
        // model cannot afford it (and degenerates gracefully). Under the
        // grouped ordering the "any toggle" indicator must remember the
        // whole xⁱ block (up to 2ⁿ nodes) and its product with the model
        // explodes, so gating is interleaved-only.
        let gate_feasible = self.ordering == VariableOrdering::Interleaved
            && self
                .max_nodes
                .map_or(true, |max| max >= 4 * n + 8);
        if collapsed > 0 && gate_feasible && self.diagonal_gating {
            let toggles = any_toggle_bdd(&mut m, n, self.ordering, &input_slots);
            let mut target = self.max_nodes.unwrap_or(usize::MAX);
            loop {
                let gated = m.add_times(c, toggles.as_add());
                if self.max_nodes.is_none_or(|max| m.size(gated.node()) <= max) {
                    c = gated;
                    break;
                }
                // Shrink the ungated model further and retry; gating only
                // redirects paths into the 0 terminal, and in the limit
                // (target = 1) the gated constant-times-indicator chain is
                // smaller than the `4n + 8` feasibility floor, so the loop
                // always terminates with a gated model.
                target = std::cmp::max(target * 3 / 4, 1);
                let (c2, out) = approximate_to_mixture(&mut m, c, target, self.strategy, &mixture);
                c = c2;
                rounds += out.rounds;
                collapsed += out.nodes_collapsed;
            }
        }

        if self.recalibrate && collapsed > 0 && self.strategy == ApproxStrategy::Average {
            c = recalibrate_leaves(&mut m, c, &mixture, &exact_means, 0.05);
        }
        let exact_means = exact_means; // moved into the model below

        let report = BuildReport {
            approximation_rounds: rounds,
            nodes_collapsed: collapsed,
            final_size: m.size(c.node()),
            exact: collapsed == 0,
            cpu: start.elapsed(),
        };
        // Final cleanup: drop everything but the model itself.
        let roots = m.compact(&[c.node()]);
        let root = Add::from_node(roots[0]);
        AddPowerModel {
            manager: m,
            root,
            num_inputs: n,
            ordering: self.ordering,
            input_slots,
            collapse_mixture: mixture,
            exact_means: if self.recalibrate {
                Some(exact_means)
            } else {
                None
            },
            report: BuildReport {
                final_size: 0, // refreshed below
                ..report
            },
            display_name: "ADD".to_owned(),
        }
        .with_refreshed_size()
    }

    /// Maps every input index to its order slot per the configured
    /// [`InputOrder`].
    ///
    /// # Panics
    ///
    /// Panics if a custom order is not a permutation of the inputs.
    fn resolve_input_slots(&self) -> Vec<usize> {
        let n = self.netlist.num_inputs();
        match &self.input_order {
            InputOrder::Natural => (0..n).collect(),
            InputOrder::Custom(order) => {
                assert_eq!(order.len(), n, "custom order must cover every input");
                let mut slots = vec![usize::MAX; n];
                for (slot, &input) in order.iter().enumerate() {
                    assert!(input < n, "input index out of range");
                    assert_eq!(slots[input], usize::MAX, "duplicate input in custom order");
                    slots[input] = slot;
                }
                slots
            }
            InputOrder::FaninDfs => {
                // Input index per signal (primary inputs only).
                let mut input_of_signal =
                    vec![usize::MAX; self.netlist.num_signals()];
                for (i, &sig) in self.netlist.inputs().iter().enumerate() {
                    input_of_signal[sig.index()] = i;
                }
                let mut slots = vec![usize::MAX; n];
                let mut next_slot = 0usize;
                let mut visited = vec![false; self.netlist.num_signals()];
                // Iterative DFS from each output through gate fanins.
                let mut stack = Vec::new();
                for &out in self.netlist.outputs() {
                    stack.push(out);
                    while let Some(sig) = stack.pop() {
                        if visited[sig.index()] {
                            continue;
                        }
                        visited[sig.index()] = true;
                        match self.netlist.driver(sig) {
                            Some(gid) => {
                                // Push fanins in reverse so pin 0 is visited
                                // first (deterministic).
                                for &fanin in self.netlist.gate(gid).inputs().iter().rev() {
                                    stack.push(fanin);
                                }
                            }
                            None => {
                                let i = input_of_signal[sig.index()];
                                if i != usize::MAX && slots[i] == usize::MAX {
                                    slots[i] = next_slot;
                                    next_slot += 1;
                                }
                            }
                        }
                    }
                }
                // Inputs unreachable from any output still need a slot.
                for s in &mut slots {
                    if *s == usize::MAX {
                        *s = next_slot;
                        next_slot += 1;
                    }
                }
                slots
            }
        }
    }
}

impl AddPowerModel {
    fn with_refreshed_size(mut self) -> Self {
        self.report.final_size = self.manager.size(self.root.node());
        self
    }
}

/// Garbage-collects the manager keeping the partial sums and all live
/// node functions, remapping every handle in place.
fn compact_live(
    m: &mut Manager,
    sig_i: &mut [Option<Bdd>],
    sig_f: &mut [Option<Bdd>],
    pending: &mut [Option<Add>],
) {
    let mut roots = Vec::new();
    let mut slots = Vec::new();
    for (idx, s) in pending.iter().enumerate() {
        if let Some(a) = s {
            roots.push(a.node());
            slots.push((2u8, idx));
        }
    }
    for (idx, s) in sig_i.iter().enumerate() {
        if let Some(b) = s {
            roots.push(b.node());
            slots.push((0u8, idx));
        }
    }
    for (idx, s) in sig_f.iter().enumerate() {
        if let Some(b) = s {
            roots.push(b.node());
            slots.push((1u8, idx));
        }
    }
    let remapped = m.compact(&roots);
    for (pos, (which, idx)) in slots.into_iter().enumerate() {
        let id = remapped[pos];
        match which {
            0 => sig_i[idx] = Some(Bdd::from_node(id)),
            1 => sig_f[idx] = Some(Bdd::from_node(id)),
            _ => pending[idx] = Some(Add::from_node(id)),
        }
    }
}

/// Adds two partial sums under the working budget.
///
/// Summing diagrams over weakly overlapping supports can blow up
/// multiplicatively (`|A|·|B|` apply cost), so operands are pre-shrunk
/// until the product of their sizes is bounded; the sum is then quantized
/// and, if still above the working slack, collapsed back to `max`.
#[allow(clippy::too_many_arguments)]
fn merge_bounded(
    m: &mut Manager,
    a: Add,
    b: Add,
    max_nodes: Option<usize>,
    quantum: f64,
    strategy: ApproxStrategy,
    mixture: &[(ChainMeasure, f64)],
    rounds: &mut usize,
    collapsed: &mut usize,
) -> Add {
    let (mut a, mut b) = (a, b);
    if let Some(max) = max_nodes {
        // Bound the apply's worst case to a few million node visits.
        let limit = 4_000_000usize.max(16 * max);
        loop {
            let (sa, sb) = (m.size(a.node()), m.size(b.node()));
            if sa.saturating_mul(sb) <= limit {
                break;
            }
            let (big, small) = if sa >= sb { (&mut a, sb) } else { (&mut b, sa) };
            let target = (limit / small.max(1)).max(max / 2).max(64);
            let (shrunk, out) = approximate_to_mixture(m, *big, target, strategy, mixture);
            *big = shrunk;
            *rounds += out.rounds;
            *collapsed += out.nodes_collapsed;
            if m.size(big.node()) >= if sa >= sb { sa } else { sb } {
                break; // cannot shrink further; accept the apply cost
            }
        }
    }
    let mut sum = m.add_plus(a, b);
    if max_nodes.is_some() {
        sum = quantize(m, sum, quantum, strategy);
    }
    if let Some(max) = max_nodes {
        if m.size(sum.node()) > 2 * max {
            let (s2, out) = approximate_to_mixture(m, sum, max, strategy, mixture);
            sum = s2;
            *rounds += out.rounds;
            *collapsed += out.nodes_collapsed;
        }
    }
    sum
}

/// Snaps every terminal to a multiple of `quantum` — round-to-nearest for
/// average models, round-up for upper bounds (which keeps them
/// conservative). Exact zero stays exact so diagonal gating is unaffected.
fn quantize(m: &mut Manager, f: Add, quantum: f64, strategy: ApproxStrategy) -> Add {
    m.add_map_terminals(f, |v| {
        if v == 0.0 {
            0.0
        } else {
            match strategy {
                ApproxStrategy::Average => (v / quantum).round() * quantum,
                ApproxStrategy::UpperBound => (v / quantum).ceil() * quantum,
            }
        }
    })
}

/// The BDD of "at least one input toggles": `OR_k (xₖⁱ ⊕ xₖᶠ)`.
fn any_toggle_bdd(
    m: &mut Manager,
    n: usize,
    ordering: VariableOrdering,
    input_slots: &[usize],
) -> Bdd {
    let mut any = m.bdd_false();
    for i in 0..n {
        let slot = input_slots[i];
        let a = m.bdd_var(ordering.xi_var(slot, n));
        let b = m.bdd_var(ordering.xf_var(slot, n));
        let t = m.bdd_xor(a, b);
        any = m.bdd_or(any, t);
    }
    any
}

/// The BDD of one library cell applied to fan-in BDDs.
fn gate_bdd(m: &mut Manager, kind: CellKind, pins: &[Bdd]) -> Bdd {
    match kind {
        CellKind::Inv => m.bdd_not(pins[0]),
        CellKind::Buf => pins[0],
        CellKind::Nand2 => {
            let a = m.bdd_and(pins[0], pins[1]);
            m.bdd_not(a)
        }
        CellKind::Nand3 => {
            let a = m.bdd_and(pins[0], pins[1]);
            let a = m.bdd_and(a, pins[2]);
            m.bdd_not(a)
        }
        CellKind::Nand4 => {
            let a = m.bdd_and(pins[0], pins[1]);
            let b = m.bdd_and(pins[2], pins[3]);
            let a = m.bdd_and(a, b);
            m.bdd_not(a)
        }
        CellKind::Nor2 => {
            let a = m.bdd_or(pins[0], pins[1]);
            m.bdd_not(a)
        }
        CellKind::Nor3 => {
            let a = m.bdd_or(pins[0], pins[1]);
            let a = m.bdd_or(a, pins[2]);
            m.bdd_not(a)
        }
        CellKind::Nor4 => {
            let a = m.bdd_or(pins[0], pins[1]);
            let b = m.bdd_or(pins[2], pins[3]);
            let a = m.bdd_or(a, b);
            m.bdd_not(a)
        }
        CellKind::And2 => m.bdd_and(pins[0], pins[1]),
        CellKind::And3 => {
            let a = m.bdd_and(pins[0], pins[1]);
            m.bdd_and(a, pins[2])
        }
        CellKind::Or2 => m.bdd_or(pins[0], pins[1]),
        CellKind::Or3 => {
            let a = m.bdd_or(pins[0], pins[1]);
            m.bdd_or(a, pins[2])
        }
        CellKind::Xor2 => m.bdd_xor(pins[0], pins[1]),
        CellKind::Xnor2 => m.bdd_xnor(pins[0], pins[1]),
        CellKind::Mux2 => m.bdd_ite(pins[0], pins[2], pins[1]),
        CellKind::Aoi21 => {
            let a = m.bdd_and(pins[0], pins[1]);
            let o = m.bdd_or(a, pins[2]);
            m.bdd_not(o)
        }
        CellKind::Oai21 => {
            let o = m.bdd_or(pins[0], pins[1]);
            let a = m.bdd_and(o, pins[2]);
            m.bdd_not(a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PowerModel;
    use charfree_netlist::benchmarks::paper_unit;
    use charfree_netlist::Library;
    use charfree_sim::{ExhaustivePairs, ZeroDelaySim};

    #[test]
    fn exact_model_reproduces_fig2_lut() {
        let unit = paper_unit();
        let model = ModelBuilder::new(&unit).build();
        assert!(model.report().exact);
        // Fig. 2b rows (xi, xf, C in fF).
        let rows = [
            ((false, false), (false, false), 0.0),
            ((false, false), (false, true), 10.0),
            ((false, false), (true, false), 10.0),
            ((false, false), (true, true), 10.0),
            ((true, true), (false, false), 90.0),
        ];
        for ((a, b), (c, d), want) in rows {
            let got = model.capacitance(&[a, b], &[c, d]).femtofarads();
            assert_eq!(got, want, "xi=({a},{b}) xf=({c},{d})");
        }
    }

    #[test]
    fn exact_model_equals_gate_level_simulation_everywhere() {
        let lib = Library::test_library();
        for netlist in [
            paper_unit(),
            charfree_netlist::benchmarks::decod(&lib),
            charfree_netlist::benchmarks::random_logic("t", 6, 25, 3, &lib),
        ] {
            let sim = ZeroDelaySim::new(&netlist);
            let model = ModelBuilder::new(&netlist).build();
            assert!(model.report().exact, "{}", netlist.name());
            for (xi, xf) in ExhaustivePairs::new(netlist.num_inputs() as u32) {
                let want = sim.switching_capacitance(&xi, &xf).femtofarads();
                let got = model.capacitance(&xi, &xf).femtofarads();
                assert!(
                    (got - want).abs() < 1e-9,
                    "{}: xi={xi:?} xf={xf:?}: {got} vs {want}",
                    netlist.name()
                );
            }
        }
    }

    #[test]
    fn both_orderings_agree() {
        let lib = Library::test_library();
        let netlist = charfree_netlist::benchmarks::decod(&lib);
        let a = ModelBuilder::new(&netlist)
            .ordering(VariableOrdering::Interleaved)
            .build();
        let b = ModelBuilder::new(&netlist)
            .ordering(VariableOrdering::Grouped)
            .build();
        for (xi, xf) in ExhaustivePairs::new(5).take(256) {
            assert_eq!(
                a.capacitance(&xi, &xf).femtofarads(),
                b.capacitance(&xi, &xf).femtofarads()
            );
        }
    }

    #[test]
    fn bounded_build_respects_max() {
        let lib = Library::test_library();
        let netlist = charfree_netlist::benchmarks::cm85(&lib);
        for max in [200, 50, 10, 5] {
            let model = ModelBuilder::new(&netlist).max_nodes(max).build();
            assert!(model.size() <= max, "MAX={max}, size={}", model.size());
            assert!(!model.report().exact);
        }
    }

    #[test]
    fn bounded_average_build_preserves_global_average() {
        // The Section 3.1 invariant: avg-collapse commutes with summation,
        // so even an aggressively approximated model keeps the exact
        // average switched capacitance.
        let lib = Library::test_library();
        let netlist = charfree_netlist::benchmarks::decod(&lib);
        let exact = ModelBuilder::new(&netlist).build();
        let rough = ModelBuilder::new(&netlist)
            .max_nodes(8)
            .collapse_toggles(&[0.5])
            .leaf_recalibration(false)
            .diagonal_gating(false)
            .build();
        // Exact up to terminal quantization (total_load / 2^14 grid).
        let tolerance = netlist.total_load().femtofarads() / 8192.0;
        assert!(
            (exact.average_capacitance().femtofarads()
                - rough.average_capacitance().femtofarads())
            .abs()
                < tolerance
        );
    }

    #[test]
    fn bounded_upper_bound_build_is_conservative() {
        let lib = Library::test_library();
        let netlist = charfree_netlist::benchmarks::decod(&lib);
        let sim = ZeroDelaySim::new(&netlist);
        let bound = ModelBuilder::new(&netlist)
            .max_nodes(12)
            .strategy(ApproxStrategy::UpperBound)
            .build();
        for (xi, xf) in ExhaustivePairs::new(5) {
            let exact = sim.switching_capacitance(&xi, &xf).femtofarads();
            let ub = bound.capacitance(&xi, &xf).femtofarads();
            assert!(ub >= exact - 1e-9, "xi={xi:?} xf={xf:?}: {ub} < {exact}");
        }
    }

    #[test]
    fn worst_case_transition_achieves_model_max() {
        let lib = Library::test_library();
        let netlist = charfree_netlist::benchmarks::decod(&lib);
        let model = ModelBuilder::new(&netlist).build();
        let (xi, xf) = model.worst_case_transition();
        assert_eq!(
            model.capacitance(&xi, &xf),
            model.max_capacitance(),
            "picked transition must realize the max"
        );
        // And for an exact model the simulator agrees.
        let sim = ZeroDelaySim::new(&netlist);
        assert_eq!(sim.switching_capacitance(&xi, &xf), model.max_capacitance());
    }

    #[test]
    fn compaction_does_not_change_results() {
        let lib = Library::test_library();
        let netlist = charfree_netlist::benchmarks::cm85(&lib);
        let every_gate = ModelBuilder::new(&netlist).compact_every(1).build();
        let never = ModelBuilder::new(&netlist).compact_every(usize::MAX).build();
        for (xi, xf) in ExhaustivePairs::new(11).take(512) {
            assert_eq!(
                every_gate.capacitance(&xi, &xf),
                never.capacitance(&xi, &xf)
            );
        }
    }

    #[test]
    fn report_displays() {
        let model = ModelBuilder::new(&paper_unit()).build();
        let text = model.report().to_string();
        assert!(text.contains("exact"));
        assert!(model.size() > 1);
    }
}
