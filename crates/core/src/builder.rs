//! Symbolic construction of the switching-capacitance ADD (paper Fig. 6).
//!
//! For every gate `g_j` of the golden model the builder forms the rising
//! condition `g_j'(xⁱ) · g_j(xᶠ)` as a BDD over the `2n` transition
//! variables, scales it by the gate's load `C_j`, and accumulates:
//!
//! ```text
//! C = 0
//! for j in 1..=N:
//!     deltaC = bdd_and(bdd_not(g_j(xi)), g_j(xf))
//!     deltaC = add_times(deltaC, C_j)
//!     if add_size(deltaC) > MAX: add_approx(deltaC, MAX)
//!     C = add_sum(C, deltaC)
//!     if add_size(C) > MAX: add_approx(C, MAX)
//! ```
//!
//! Approximation *during* construction is what keeps the build feasible for
//! units whose exact ADD explodes; the additive invariants
//! `avg(a)+avg(b)=avg(a+b)` and `max(a)+max(b) ≥ max(a+b)` (Section 3.1)
//! guarantee the chosen strategy's global property survives the summation.

use crate::approx::{approximate_to_mixture, ApproxStrategy};
use crate::calibrate::{recalibrate_leaves, ExactMeans};
use crate::degrade::{BuildError, DegradationReport, DegradationRung};
use crate::model::{AddPowerModel, BuildReport, VariableOrdering};
use charfree_dd::reorder::reorder_paired_windows;
use charfree_dd::{
    Add, ApplyStats, Bdd, Budget, CancelToken, ChainMeasure, DdError, Manager, NodeId, Resource,
    Var,
};
use charfree_netlist::{CellKind, Netlist};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How macro inputs are arranged along the diagram's variable order.
///
/// Decision-diagram size is exquisitely order-sensitive: a comparator whose
/// `a` and `b` operand bits sit far apart blows up exponentially, while the
/// interleaved order stays linear. The default heuristic is the classic
/// fanin-DFS order (depth-first traversal from the primary outputs through
/// the gate fanins, recording primary inputs in first-visit order), which
/// clusters structurally related inputs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum InputOrder {
    /// Fanin-DFS heuristic from the outputs (default).
    #[default]
    FaninDfs,
    /// Keep the netlist's declaration order (ablation baseline).
    Natural,
    /// Explicit permutation: `custom[slot]` = input index placed at that
    /// slot.
    Custom(Vec<usize>),
}

/// Builder for [`AddPowerModel`]s.
///
/// # Examples
///
/// An upper-bound model capped at 50 nodes:
///
/// ```
/// use charfree_core::{ApproxStrategy, ModelBuilder, PowerModel};
/// use charfree_netlist::{benchmarks, Library};
///
/// let library = Library::test_library();
/// let cm85 = benchmarks::cm85(&library);
/// let bound = ModelBuilder::new(&cm85)
///     .max_nodes(50)
///     .strategy(ApproxStrategy::UpperBound)
///     .build();
/// assert!(bound.size() <= 50);
/// ```
#[derive(Debug)]
pub struct ModelBuilder<'a> {
    netlist: &'a Netlist,
    max_nodes: Option<usize>,
    strategy: ApproxStrategy,
    ordering: VariableOrdering,
    input_order: InputOrder,
    collapse_toggles: Vec<f64>,
    recalibrate: bool,
    diagonal_gating: bool,
    compact_every: usize,
    node_budget: Option<u64>,
    time_budget: Option<Duration>,
    step_budget: Option<u64>,
    cancel: Option<CancelToken>,
    trips: Vec<u64>,
    strict: bool,
    stats: Option<Arc<ApplyStats>>,
}

/// Default toggle-probability family the collapse mixture spans; chosen to
/// cover the whole `st` sweep of the paper's Fig. 7a.
const DEFAULT_COLLAPSE_TOGGLES: [f64; 5] = [0.05, 0.15, 0.3, 0.5, 0.8];

impl<'a> ModelBuilder<'a> {
    /// Starts a builder with defaults: no size bound (exact model),
    /// [`ApproxStrategy::Average`], interleaved variables, fanin-DFS input
    /// order.
    pub fn new(netlist: &'a Netlist) -> Self {
        ModelBuilder {
            netlist,
            max_nodes: None,
            strategy: ApproxStrategy::Average,
            ordering: VariableOrdering::Interleaved,
            input_order: InputOrder::FaninDfs,
            collapse_toggles: DEFAULT_COLLAPSE_TOGGLES.to_vec(),
            recalibrate: true,
            diagonal_gating: true,
            compact_every: 16,
            node_budget: None,
            time_budget: None,
            step_budget: None,
            cancel: None,
            trips: Vec::new(),
            strict: false,
            stats: None,
        }
    }

    /// Selects how macro inputs map to diagram order slots.
    pub fn input_order(mut self, order: InputOrder) -> Self {
        self.input_order = order;
        self
    }

    /// Sets the per-input flip probabilities spanned by the *collapse
    /// measure mixture*: approximation is steered to minimize the expected
    /// error averaged over transition distributions with these toggle
    /// rates (default `[0.05, 0.15, 0.3, 0.5, 0.8]`, covering the paper's
    /// `st` sweep).
    ///
    /// Passing `[0.5]` alone recovers the paper's uniform measure (under
    /// which the exact global average is preserved by construction, but
    /// accuracy away from `st = 0.5` degrades). Only meaningful together
    /// with [`VariableOrdering::Interleaved`]; the grouped ordering always
    /// uses the uniform measure.
    ///
    /// # Panics
    ///
    /// Panics if `toggles` is empty or any value is outside `(0, 1)`.
    pub fn collapse_toggles(mut self, toggles: &[f64]) -> Self {
        assert!(!toggles.is_empty(), "at least one toggle rate required");
        assert!(
            toggles.iter().all(|&t| t > 0.0 && t < 1.0),
            "toggle rates must be in (0,1)"
        );
        self.collapse_toggles = toggles.to_vec();
        self
    }

    /// Enables or disables analytic terminal recalibration of approximated
    /// average models (default: enabled). Recalibration shifts leaf values
    /// to cancel the model's mean bias across the collapse-measure family,
    /// computed entirely from the gate BDDs — no simulation involved (see
    /// `calibrate` module docs). Ignored for upper-bound models.
    pub fn leaf_recalibration(mut self, enabled: bool) -> Self {
        self.recalibrate = enabled;
        self
    }

    /// Enables or disables zeroing of the no-transition diagonal after
    /// approximation (default: enabled). `C(x, x) = 0` holds exactly in the
    /// golden model; gating restores it in approximated models at the cost
    /// of a 2n-node indicator chain. Disable together with
    /// [`ModelBuilder::leaf_recalibration`] and `collapse_toggles(&[0.5])`
    /// to reproduce the paper's plain configuration, under which the
    /// global average is preserved exactly (Section 3.1).
    pub fn diagonal_gating(mut self, enabled: bool) -> Self {
        self.diagonal_gating = enabled;
        self
    }

    /// Caps the diagram at `max` nodes (the paper's `MAX`), enabling
    /// approximation during construction.
    ///
    /// # Panics
    ///
    /// Panics if `max == 0`.
    pub fn max_nodes(mut self, max: usize) -> Self {
        assert!(max >= 1, "MAX must be at least 1");
        self.max_nodes = Some(max);
        self
    }

    /// Selects the approximation strategy (average-accurate vs conservative
    /// upper bound).
    pub fn strategy(mut self, strategy: ApproxStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Selects the transition-variable ordering.
    pub fn ordering(mut self, ordering: VariableOrdering) -> Self {
        self.ordering = ordering;
        self
    }

    /// How many gates to process between manager garbage collections.
    pub fn compact_every(mut self, gates: usize) -> Self {
        self.compact_every = gates.max(1);
        self
    }

    /// Caps the live-node population of the construction arena — the
    /// primary knob of the resource governor. When the cap trips, the
    /// degradation ladder fires (see [`DegradationReport`]); in
    /// [`ModelBuilder::strict`] mode the build fails instead. The final
    /// model is also approximated below this cap.
    ///
    /// Distinct from [`ModelBuilder::max_nodes`]: `max_nodes` is the
    /// paper's *accuracy* knob (target size of the finished model), the
    /// node budget is a *robustness* knob (hard ceiling on transient
    /// construction state, including the gate BDDs that `max_nodes`
    /// cannot approximate).
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn node_budget(mut self, nodes: u64) -> Self {
        assert!(nodes >= 1, "node budget must be at least 1");
        self.node_budget = Some(nodes);
        self
    }

    /// Sets a wall-clock deadline for the whole construction. A deadline
    /// trip skips straight to the constant-fallback rung — retrying
    /// cannot recover elapsed time.
    pub fn time_budget(mut self, timeout: Duration) -> Self {
        self.time_budget = Some(timeout);
        self
    }

    /// Caps cache-missing apply/ITE recursion steps, a deterministic CPU
    /// proxy. Exhaustion is terminal (like the deadline): the step
    /// counter is cumulative, so a retry would trip again immediately.
    pub fn step_budget(mut self, steps: u64) -> Self {
        self.step_budget = Some(steps);
        self
    }

    /// Attaches a cooperative cancellation token. Cancelling degrades
    /// the build to the constant fallback at the next checkpoint (or
    /// fails it in strict mode) — either way the call returns promptly
    /// with a well-formed result.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Strict mode: the first budget trip aborts the build with
    /// [`BuildError::BudgetExceeded`] instead of degrading the model.
    pub fn strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Schedules a deterministic fault-injection budget trip `n`
    /// checkpoints after the previously scheduled one (chainable; see
    /// [`Budget::trip_after`]). Lets tests exercise each degradation
    /// rung without constructing genuinely huge diagrams.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn trip_after(mut self, n: u64) -> Self {
        assert!(n > 0, "trip_after needs a positive checkpoint count");
        self.trips.push(n);
        self
    }

    /// Attaches a shared telemetry sink that accumulates apply-step counts
    /// and peak arena pressure across every budget checkpoint of this
    /// build (see [`ApplyStats`]). The sink is additive and may be shared
    /// across builds; a run that never enters the symbolic phase — e.g. a
    /// warm cache hit upstream — leaves it untouched, which is how callers
    /// prove a model was *not* rebuilt.
    pub fn stats(mut self, sink: Arc<ApplyStats>) -> Self {
        self.stats = Some(sink);
        self
    }

    /// Runs the construction, panicking on failure.
    ///
    /// Without a resource budget configured the construction cannot fail,
    /// so this stays the convenient entry point for unbudgeted builds;
    /// budgeted callers use [`ModelBuilder::try_build`].
    ///
    /// Setting the `CHARFREE_BUILD_TRACE` environment variable makes the
    /// build print per-25-gate progress (arena size, pending partial-sum
    /// sizes, elapsed time) to stderr — useful when modeling large units.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails validation, or if a configured budget
    /// is exhausted in strict mode.
    pub fn build(self) -> AddPowerModel {
        self.try_build()
            .unwrap_or_else(|e| panic!("netlist must be valid and within budget: {e}"))
    }

    /// Runs the construction under the configured resource budget,
    /// degrading gracefully instead of failing.
    ///
    /// When a budget limit trips mid-construction the builder walks a
    /// three-rung degradation ladder (collapse pending partial sums →
    /// reorder variables and retry the failed gate → fold the remaining
    /// gates in as conservative load constants) and returns `Ok` with a
    /// [`DegradationReport`] attached to the model
    /// ([`AddPowerModel::degradation`]). Only [`ModelBuilder::strict`]
    /// mode converts a trip into an error.
    ///
    /// # Errors
    ///
    /// [`BuildError::InvalidNetlist`] if the netlist fails validation;
    /// [`BuildError::BudgetExceeded`] if a budget trips in strict mode.
    ///
    /// # Examples
    ///
    /// A build driven over budget by fault injection degrades instead of
    /// failing:
    ///
    /// ```
    /// use charfree_core::ModelBuilder;
    /// use charfree_netlist::{benchmarks, Library};
    ///
    /// let library = Library::test_library();
    /// let netlist = benchmarks::cm85(&library);
    /// let model = ModelBuilder::new(&netlist)
    ///     .node_budget(400)
    ///     .trip_after(50)
    ///     .try_build()
    ///     .expect("degrades, never fails");
    /// let report = model.degradation().expect("the trip fired a rung");
    /// assert!(!report.rungs.is_empty());
    /// ```
    pub fn try_build(self) -> Result<AddPowerModel, BuildError> {
        Ok(self.try_accumulate()?.collapse())
    }

    /// Stage 1 of the construction: runs the budgeted gate loop of the
    /// paper's Fig. 6 (node-function BDDs, rise conditions, binary-counter
    /// partial sums, the full degradation ladder) and stops *before* the
    /// partial sums are folded into one diagram. The returned
    /// [`PartialBuild`] owns the live arena; [`PartialBuild::collapse`]
    /// finishes the model.
    ///
    /// [`ModelBuilder::try_build`] is exactly
    /// `try_accumulate()?.collapse()` — the split exists so staged drivers
    /// (the pipeline crate) can time and report the two phases separately.
    ///
    /// # Errors
    ///
    /// Same contract as [`ModelBuilder::try_build`].
    pub fn try_accumulate(self) -> Result<PartialBuild<'a>, BuildError> {
        self.netlist
            .validate()
            .map_err(BuildError::InvalidNetlist)?;
        let trace = std::env::var_os("CHARFREE_BUILD_TRACE").is_some();
        let start = Instant::now();

        let mut budget = Budget::unlimited();
        if let Some(nodes) = self.node_budget {
            budget = budget.with_max_live_nodes(nodes);
        }
        if let Some(timeout) = self.time_budget {
            budget = budget.with_deadline(timeout);
        }
        if let Some(steps) = self.step_budget {
            budget = budget.with_max_apply_steps(steps);
        }
        if let Some(token) = &self.cancel {
            budget = budget.with_cancel_token(token.clone());
        }
        if let Some(sink) = &self.stats {
            budget = budget.with_stats(sink.clone());
        }
        for &trip in &self.trips {
            budget = budget.trip_after(trip);
        }
        // Size ceiling the *finished* model must respect: the explicit
        // approximation target if given, else the construction budget.
        let cap = self
            .max_nodes
            .or(self.node_budget.map(|v| (v as usize).max(1)));

        let n = self.netlist.num_inputs();
        let mut input_slots = self.resolve_input_slots();
        let mut m = Manager::new(2 * n as u32);
        name_transition_vars(self.netlist, self.ordering, &input_slots, &mut m);

        // Node-function BDDs per signal, over the xi and xf variable blocks.
        let mut sig_i: Vec<Option<Bdd>> = vec![None; self.netlist.num_signals()];
        let mut sig_f: Vec<Option<Bdd>> = vec![None; self.netlist.num_signals()];
        for (i, &sig) in self.netlist.inputs().iter().enumerate() {
            let slot = input_slots[i];
            sig_i[sig.index()] = Some(m.bdd_var(self.ordering.xi_var(slot, n)));
            sig_f[sig.index()] = Some(m.bdd_var(self.ordering.xf_var(slot, n)));
        }

        // Remaining-use counts so dead node functions can be collected.
        let mut uses = vec![0usize; self.netlist.num_signals()];
        for (_, gate) in self.netlist.gates() {
            for &s in gate.inputs() {
                uses[s.index()] += 1;
            }
        }

        // Binary-counter accumulation: `pending[r]` holds a partial sum of
        // 2^r gate contributions. Merging equal-rank sums keeps operand
        // supports correlated (nearby gates) and cuts the number of
        // size-triggered approximation passes from O(N) to O(N / 2^r0),
        // which dominates construction time on large units. Plain
        // left-fold summation is the paper's literal Fig. 6; '+' is
        // associative, so the result is equivalent up to approximation
        // scheduling.
        let mut pending: Vec<Option<Add>> = Vec::new();
        // Terminal quantization step: switching-capacitance ADDs are
        // value-driven (every distinct partial sum of loads is a terminal),
        // and merging sums over disjoint supports multiplies terminal
        // sets. Snapping terminals to a fine grid (2^-14 of the total
        // load) bounds that growth with a relative error ~6e-5 — far below
        // model accuracy. The upper-bound strategy rounds *up*, preserving
        // conservativeness.
        let quantum = (self.netlist.total_load().femtofarads() / 16384.0).max(1e-9);
        let weight = 1.0 / self.collapse_toggles.len() as f64;
        let mixture: Vec<(ChainMeasure, f64)> = match self.ordering {
            VariableOrdering::Interleaved => self
                .collapse_toggles
                .iter()
                .map(|&t| {
                    (
                        ChainMeasure::interleaved_transitions(n as u32, 0.5, t),
                        weight,
                    )
                })
                .collect(),
            VariableOrdering::Grouped => vec![(ChainMeasure::uniform(2 * n as u32), 1.0)],
        };
        let mut rounds = 0usize;
        let mut collapsed = 0usize;
        // Analytic per-measure means of the exact switching capacitance,
        // Σⱼ Cⱼ·P_t(riseⱼ), accumulated gate by gate for recalibration
        // (during this build and any later `shrink`).
        let mut exact_means = ExactMeans(vec![0.0; mixture.len()]);

        // Degradation-ladder state.
        let mut deg = DegradationReport {
            node_budget: self.node_budget,
            ..DegradationReport::default()
        };
        let gate_ids: Vec<_> = self.netlist.gates().map(|(id, _)| id).collect();
        let mut retries = vec![0usize; gate_ids.len()];
        let mut reorderings = 0usize;
        let mut constant_tail = 0.0f64;
        let mut gates_folded = 0usize;

        let mut gate_no = 0usize;
        while gate_no < gate_ids.len() {
            let gate = self.netlist.gate(gate_ids[gate_no]);

            // Phase A (retriable): node functions and the scaled rise ADD.
            // Nothing is committed on failure — recalibration means land in
            // a local buffer and the signal tables are written only on
            // success, so a remediated retry starts clean.
            let attempt = (|m: &mut Manager,
                            rounds: &mut usize,
                            collapsed: &mut usize|
             -> Result<(Bdd, Bdd, Add, Vec<f64>), DdError> {
                let pins_i: Vec<Bdd> = gate
                    .inputs()
                    .iter()
                    .map(|s| sig_i[s.index()].expect("topological order"))
                    .collect();
                let pins_f: Vec<Bdd> = gate
                    .inputs()
                    .iter()
                    .map(|s| sig_f[s.index()].expect("topological order"))
                    .collect();
                let gi = try_gate_bdd(m, gate.kind(), &pins_i, &budget)?;
                let gf = try_gate_bdd(m, gate.kind(), &pins_f, &budget)?;

                // deltaC = (NOT g(xi)) AND g(xf), scaled by the load.
                let not_gi = m.try_bdd_not(gi, &budget)?;
                let rise = m.try_bdd_and(not_gi, gf, &budget)?;
                let mut means = vec![0.0f64; mixture.len()];
                if self.recalibrate {
                    for ((measure, _), mean) in mixture.iter().zip(&mut means) {
                        let profile = m.add_measured_profile(rise.as_add(), measure);
                        *mean += gate.load().femtofarads() * profile[&rise.node()].stats.avg;
                    }
                }
                let mut delta =
                    m.try_add_scale(rise.as_add(), gate.load().femtofarads(), &budget)?;
                // Working slack: let intermediates grow to 2×cap before
                // collapsing back. Halves the number of approximation
                // passes (their cost dominates large builds) without
                // changing the final budget, which the post-loop pass
                // enforces.
                if let Some(max) = cap {
                    if m.size(delta.node()) > 2 * max {
                        let (d, out) =
                            approximate_to_mixture(m, delta, max, self.strategy, &mixture);
                        delta = d;
                        *rounds += out.rounds;
                        *collapsed += out.nodes_collapsed;
                    }
                }
                Ok((gi, gf, delta, means))
            })(&mut m, &mut rounds, &mut collapsed);

            let (err, contribution_committed) = match attempt {
                Ok((gi, gf, delta, means)) => {
                    sig_i[gate.output().index()] = Some(gi);
                    sig_f[gate.output().index()] = Some(gf);
                    for (acc, d) in exact_means.0.iter_mut().zip(&means) {
                        *acc += d;
                    }

                    // Phase B: carry-propagate the contribution through the
                    // binary counter (see the comment on `pending` above).
                    let mut committed = Ok(());
                    let mut cur = delta;
                    let mut rank = 0usize;
                    loop {
                        if rank == pending.len() {
                            pending.push(None);
                        }
                        match pending[rank].take() {
                            None => {
                                pending[rank] = Some(cur);
                                break;
                            }
                            Some(other) => match try_merge_bounded(
                                &mut m,
                                other,
                                cur,
                                cap,
                                quantum,
                                self.strategy,
                                &mixture,
                                &mut rounds,
                                &mut collapsed,
                                &budget,
                            ) {
                                Ok(merged) => {
                                    cur = merged;
                                    rank += 1;
                                }
                                Err(e) => {
                                    // Both operands remain valid diagrams;
                                    // stash them so the represented total is
                                    // unchanged, then let the ladder
                                    // remediate. The gate itself is done.
                                    pending[rank] = Some(other);
                                    pending.push(Some(cur));
                                    committed = Err(e);
                                    break;
                                }
                            },
                        }
                    }

                    // Release node functions that no later gate consumes.
                    for &s in gate.inputs() {
                        let u = &mut uses[s.index()];
                        *u -= 1;
                        if *u == 0 {
                            sig_i[s.index()] = None;
                            sig_f[s.index()] = None;
                        }
                    }
                    m.clear_caches();

                    match committed {
                        Ok(()) => {
                            if (gate_no + 1).is_multiple_of(self.compact_every) {
                                compact_live(&mut m, &mut sig_i, &mut sig_f, &mut pending);
                            }
                            if trace && gate_no % 25 == 24 {
                                eprintln!(
                                    "[build] gate {}/{} arena={} pending={:?} elapsed={:.1}s",
                                    gate_no + 1,
                                    self.netlist.num_gates(),
                                    m.arena_len(),
                                    pending
                                        .iter()
                                        .map(|p| p.map(|a| m.size(a.node())).unwrap_or(0))
                                        .collect::<Vec<_>>(),
                                    start.elapsed().as_secs_f64()
                                );
                            }
                            gate_no += 1;
                            continue;
                        }
                        Err(e) => (e, true),
                    }
                }
                Err(e) => (e, false),
            };

            // A budget trip: strict mode errors out, otherwise the ladder
            // picks a remediation rung.
            if self.strict {
                return Err(err.into());
            }
            let DdError::BudgetExceeded { resource, .. } = err else {
                return Err(err.into());
            };
            deg.first_trip.get_or_insert(resource);
            retries[gate_no] += 1;
            // Time, step and cancellation exhaustion are terminal: a retry
            // would trip again immediately, so jump to the last rung.
            let terminal = matches!(
                resource,
                Resource::WallClock | Resource::Cancelled | Resource::ApplySteps
            );
            let reorder_possible =
                self.ordering == VariableOrdering::Interleaved && reorderings < 2;
            let rung = DegradationRung::select(terminal, retries[gate_no], reorder_possible);
            deg.rungs.push(rung);
            match rung {
                DegradationRung::ShedPartialSums => {
                    shed_pending(
                        &mut m,
                        &mut pending,
                        self.node_budget,
                        self.strategy,
                        &mixture,
                        &mut rounds,
                        &mut collapsed,
                    );
                    compact_live(&mut m, &mut sig_i, &mut sig_f, &mut pending);
                    m.clear_caches();
                }
                DegradationRung::ReorderVariables => {
                    reorderings += 1;
                    reorder_live(
                        &mut m,
                        &mut sig_i,
                        &mut sig_f,
                        &mut pending,
                        &mut input_slots,
                    );
                    compact_live(&mut m, &mut sig_i, &mut sig_f, &mut pending);
                    m.clear_caches();
                    name_transition_vars(self.netlist, self.ordering, &input_slots, &mut m);
                }
                DegradationRung::ConstantFallback => {
                    // Every remaining gate switches at most its own load per
                    // cycle, so a constant C_j per gate is a valid,
                    // conservative stand-in for its contribution.
                    let from = if contribution_committed {
                        gate_no + 1
                    } else {
                        gate_no
                    };
                    for &id in &gate_ids[from..] {
                        constant_tail += self.netlist.gate(id).load().femtofarads();
                        gates_folded += 1;
                    }
                    break;
                }
            }
            if contribution_committed {
                gate_no += 1;
            }
        }

        deg.gates_folded = gates_folded;
        deg.constant_tail_ff = constant_tail;
        deg.gate_retries = gate_ids
            .iter()
            .enumerate()
            .filter(|&(i, _)| retries[i] > 0)
            .map(|(i, &id)| {
                let out = self.netlist.gate(id).output();
                (self.netlist.signal_name(out).to_owned(), retries[i])
            })
            .collect();
        Ok(PartialBuild {
            builder: self,
            m,
            pending,
            cap,
            quantum,
            mixture,
            exact_means,
            deg,
            rounds,
            collapsed,
            constant_tail,
            input_slots,
            start,
        })
    }

    /// Maps every input index to its order slot per the configured
    /// [`InputOrder`].
    ///
    /// # Panics
    ///
    /// Panics if a custom order is not a permutation of the inputs.
    fn resolve_input_slots(&self) -> Vec<usize> {
        let n = self.netlist.num_inputs();
        match &self.input_order {
            InputOrder::Natural => (0..n).collect(),
            InputOrder::Custom(order) => {
                assert_eq!(order.len(), n, "custom order must cover every input");
                let mut slots = vec![usize::MAX; n];
                for (slot, &input) in order.iter().enumerate() {
                    assert!(input < n, "input index out of range");
                    assert_eq!(slots[input], usize::MAX, "duplicate input in custom order");
                    slots[input] = slot;
                }
                slots
            }
            InputOrder::FaninDfs => {
                // Input index per signal (primary inputs only).
                let mut input_of_signal = vec![usize::MAX; self.netlist.num_signals()];
                for (i, &sig) in self.netlist.inputs().iter().enumerate() {
                    input_of_signal[sig.index()] = i;
                }
                let mut slots = vec![usize::MAX; n];
                let mut next_slot = 0usize;
                let mut visited = vec![false; self.netlist.num_signals()];
                // Iterative DFS from each output through gate fanins.
                let mut stack = Vec::new();
                for &out in self.netlist.outputs() {
                    stack.push(out);
                    while let Some(sig) = stack.pop() {
                        if visited[sig.index()] {
                            continue;
                        }
                        visited[sig.index()] = true;
                        match self.netlist.driver(sig) {
                            Some(gid) => {
                                // Push fanins in reverse so pin 0 is visited
                                // first (deterministic).
                                for &fanin in self.netlist.gate(gid).inputs().iter().rev() {
                                    stack.push(fanin);
                                }
                            }
                            None => {
                                let i = input_of_signal[sig.index()];
                                if i != usize::MAX && slots[i] == usize::MAX {
                                    slots[i] = next_slot;
                                    next_slot += 1;
                                }
                            }
                        }
                    }
                }
                // Inputs unreachable from any output still need a slot.
                for s in &mut slots {
                    if *s == usize::MAX {
                        *s = next_slot;
                        next_slot += 1;
                    }
                }
                slots
            }
        }
    }
}

/// The state of a construction after [`ModelBuilder::try_accumulate`]:
/// every gate's contribution sits in the binary-counter partial sums (or
/// the conservative constant tail, if the degradation ladder folded it
/// there), but the sums have not been combined, gated, or recalibrated
/// yet. Consume it with [`PartialBuild::collapse`].
#[derive(Debug)]
pub struct PartialBuild<'a> {
    builder: ModelBuilder<'a>,
    m: Manager,
    pending: Vec<Option<Add>>,
    cap: Option<usize>,
    quantum: f64,
    mixture: Vec<(ChainMeasure, f64)>,
    exact_means: ExactMeans,
    deg: DegradationReport,
    rounds: usize,
    collapsed: usize,
    constant_tail: f64,
    input_slots: Vec<usize>,
    start: Instant,
}

impl<'a> PartialBuild<'a> {
    /// Live nodes currently in the construction arena (partial sums plus
    /// any still-referenced node functions).
    pub fn arena_nodes(&self) -> usize {
        self.m.arena_len()
    }

    /// Degradation rungs the accumulate phase took (empty for a clean
    /// build).
    pub fn degradation_rungs(&self) -> usize {
        self.deg.rungs.len()
    }

    /// Stage 2 of the construction: folds the pending partial sums into
    /// one diagram, enforces the size ceiling, gates the no-transition
    /// diagonal, recalibrates leaves, adds the conservative constant tail
    /// and compacts the arena down to the finished model. Infallible —
    /// every budgeted step already ran in
    /// [`ModelBuilder::try_accumulate`]; this phase only shrinks.
    pub fn collapse(self) -> AddPowerModel {
        let PartialBuild {
            builder,
            mut m,
            pending,
            cap,
            quantum,
            mixture,
            exact_means,
            mut deg,
            mut rounds,
            mut collapsed,
            constant_tail,
            input_slots,
            start,
        } = self;
        let n = builder.netlist.num_inputs();
        let mut c = m.add_zero();

        // Fold the counter into the final accumulator. This runs
        // unbudgeted: a trip here could only re-shed what the ladder
        // already shed, and the size cap below still applies.
        for slot in pending.into_iter().flatten() {
            c = merge_bounded(
                &mut m,
                c,
                slot,
                cap,
                quantum,
                builder.strategy,
                &mixture,
                &mut rounds,
                &mut collapsed,
            );
        }

        // Enforce the size ceiling exactly before gating/recalibration.
        if let Some(max) = cap {
            if m.size(c.node()) > max {
                let (c2, out) = approximate_to_mixture(&mut m, c, max, builder.strategy, &mixture);
                c = c2;
                rounds += out.rounds;
                collapsed += out.nodes_collapsed;
            }
        }

        let fallback_fired = deg.fired(DegradationRung::ConstantFallback);

        // Restore exactness on the no-transition diagonal: C(x, x) = 0 for
        // every x (no signal can rise without an input transition), but
        // collapse leaves make the diagonal positive, which wrecks relative
        // accuracy at low transition activity where most cycles are idle.
        // Gating with the "any input toggles" indicator (a 2n-node BDD
        // chain) zeroes the diagonal exactly; values off the diagonal are
        // untouched, so average- and upper-bound properties are preserved.
        // Gating costs at least a 2n-node chain; below that budget the
        // model cannot afford it (and degenerates gracefully). Under the
        // grouped ordering the "any toggle" indicator must remember the
        // whole xⁱ block (up to 2ⁿ nodes) and its product with the model
        // explodes, so gating is interleaved-only. Constant-fallback models
        // skip gating: their constant tail dominates the diagonal anyway
        // and the product is one more place to blow up.
        let gate_feasible = builder.ordering == VariableOrdering::Interleaved
            && cap.is_none_or(|max| max >= 4 * n + 8);
        if collapsed > 0 && gate_feasible && builder.diagonal_gating && !fallback_fired {
            let toggles = any_toggle_bdd(&mut m, n, builder.ordering, &input_slots);
            let mut target = cap.unwrap_or(usize::MAX);
            loop {
                let gated = m.add_times(c, toggles.as_add());
                if cap.is_none_or(|max| m.size(gated.node()) <= max) {
                    c = gated;
                    break;
                }
                // Shrink the ungated model further and retry; gating only
                // redirects paths into the 0 terminal, and in the limit
                // (target = 1) the gated constant-times-indicator chain is
                // smaller than the `4n + 8` feasibility floor, so the loop
                // always terminates with a gated model.
                target = std::cmp::max(target * 3 / 4, 1);
                let (c2, out) =
                    approximate_to_mixture(&mut m, c, target, builder.strategy, &mixture);
                c = c2;
                rounds += out.rounds;
                collapsed += out.nodes_collapsed;
            }
        }

        if builder.recalibrate
            && collapsed > 0
            && builder.strategy == ApproxStrategy::Average
            && !fallback_fired
        {
            c = recalibrate_leaves(&mut m, c, &mixture, &exact_means, 0.05);
        }

        // The constant tail goes in *after* the ceiling is enforced:
        // adding a constant re-labels terminals without changing the
        // diagram shape, so the size stays within the cap.
        if constant_tail > 0.0 {
            let tail = m.constant(constant_tail);
            c = m.add_plus(c, tail);
        }

        let report = BuildReport {
            approximation_rounds: rounds,
            nodes_collapsed: collapsed,
            final_size: m.size(c.node()),
            exact: collapsed == 0 && !fallback_fired,
            cpu: start.elapsed(),
        };
        // Final cleanup: drop everything but the model itself.
        let roots = m.compact(&[c.node()]);
        let root = Add::from_node(roots[0]);
        deg.final_nodes = m.size(root.node());
        AddPowerModel {
            manager: m,
            root,
            num_inputs: n,
            ordering: builder.ordering,
            input_slots,
            collapse_mixture: mixture,
            // A fallback model's means are incomplete; recalibrating a
            // later `shrink` against them would skew the model.
            exact_means: if builder.recalibrate && !fallback_fired {
                Some(exact_means)
            } else {
                None
            },
            report: BuildReport {
                final_size: 0, // refreshed below
                ..report
            },
            degradation: if deg.rungs.is_empty() {
                None
            } else {
                Some(deg)
            },
            display_name: "ADD".to_owned(),
        }
        .with_refreshed_size()
    }
}

impl AddPowerModel {
    fn with_refreshed_size(mut self) -> Self {
        self.report.final_size = self.manager.size(self.root.node());
        self
    }
}

/// Garbage-collects the manager keeping the partial sums and all live
/// node functions, remapping every handle in place.
fn compact_live(
    m: &mut Manager,
    sig_i: &mut [Option<Bdd>],
    sig_f: &mut [Option<Bdd>],
    pending: &mut [Option<Add>],
) {
    let mut roots = Vec::new();
    let mut slots = Vec::new();
    for (idx, s) in pending.iter().enumerate() {
        if let Some(a) = s {
            roots.push(a.node());
            slots.push((2u8, idx));
        }
    }
    for (idx, s) in sig_i.iter().enumerate() {
        if let Some(b) = s {
            roots.push(b.node());
            slots.push((0u8, idx));
        }
    }
    for (idx, s) in sig_f.iter().enumerate() {
        if let Some(b) = s {
            roots.push(b.node());
            slots.push((1u8, idx));
        }
    }
    let remapped = m.compact(&roots);
    for (pos, (which, idx)) in slots.into_iter().enumerate() {
        let id = remapped[pos];
        match which {
            0 => sig_i[idx] = Some(Bdd::from_node(id)),
            1 => sig_f[idx] = Some(Bdd::from_node(id)),
            _ => pending[idx] = Some(Add::from_node(id)),
        }
    }
}

/// (Re)labels the diagram variables with the input signal names —
/// idempotent, so the degradation ladder can re-run it after a reorder
/// moves inputs to new slots.
fn name_transition_vars(
    netlist: &Netlist,
    ordering: VariableOrdering,
    input_slots: &[usize],
    m: &mut Manager,
) {
    let n = netlist.num_inputs();
    for (i, &slot) in input_slots.iter().enumerate() {
        let name = netlist.signal_name(netlist.inputs()[i]);
        m.set_var_name(ordering.xi_var(slot, n), format!("{name}^i"));
        m.set_var_name(ordering.xf_var(slot, n), format!("{name}^f"));
    }
}

/// Degradation rung 1: collapse every pending partial sum well below the
/// node budget so the retried gate has headroom.
///
/// With a node budget the per-sum target splits an eighth of the budget
/// across the live sums; without one (the trip came from another
/// resource) each sum is quartered. The floor of 16 nodes keeps even
/// drastic sheds structurally meaningful.
#[allow(clippy::too_many_arguments)]
fn shed_pending(
    m: &mut Manager,
    pending: &mut [Option<Add>],
    node_budget: Option<u64>,
    strategy: ApproxStrategy,
    mixture: &[(ChainMeasure, f64)],
    rounds: &mut usize,
    collapsed: &mut usize,
) {
    let live = pending.iter().flatten().count().max(1);
    for slot in pending.iter_mut() {
        if let Some(a) = slot {
            let size = m.size(a.node());
            let target = node_budget
                .map(|nb| ((nb as usize / 8) / live).max(16))
                .unwrap_or_else(|| (size / 4).max(16));
            if size > target {
                let (shrunk, out) = approximate_to_mixture(m, *a, target, strategy, mixture);
                *slot = Some(shrunk);
                *rounds += out.rounds;
                *collapsed += out.nodes_collapsed;
            }
        }
    }
}

/// Degradation rung 2: search a better variable order on the largest live
/// diagram and permute every live root (and the input-slot map)
/// consistently. Interleaved ordering only — the search moves whole
/// `(xᵢⁱ, xᵢᶠ)` pairs, so the measure mixture (a function of pair
/// position, not identity) stays valid as-is.
///
/// Returns `false` if the search found no improvement (the ladder then
/// escalates on the next trip).
fn reorder_live(
    m: &mut Manager,
    sig_i: &mut [Option<Bdd>],
    sig_f: &mut [Option<Bdd>],
    pending: &mut [Option<Add>],
    input_slots: &mut [usize],
) -> bool {
    let mut probe: Option<NodeId> = None;
    let mut probe_size = 0usize;
    for root in pending
        .iter()
        .flatten()
        .map(|a| a.node())
        .chain(sig_i.iter().flatten().map(|b| b.node()))
        .chain(sig_f.iter().flatten().map(|b| b.node()))
    {
        let s = m.size(root);
        if s > probe_size {
            probe_size = s;
            probe = Some(root);
        }
    }
    let Some(probe) = probe else { return false };
    let (_, placement) = reorder_paired_windows(m, probe, 2, 1);
    if placement.iter().enumerate().all(|(p, &to)| p == to) {
        return false;
    }
    // Pair p's content now sits at pair position placement[p].
    let mut var_perm: Vec<Var> = (0..2 * placement.len() as u32).map(Var).collect();
    for (p, &to) in placement.iter().enumerate() {
        var_perm[2 * p] = Var(2 * to as u32);
        var_perm[2 * p + 1] = Var(2 * to as u32 + 1);
    }
    for slot in pending.iter_mut() {
        if let Some(a) = *slot {
            *slot = Some(Add::from_node(m.permute(a.node(), &var_perm)));
        }
    }
    for slot in sig_i.iter_mut().chain(sig_f.iter_mut()) {
        if let Some(b) = *slot {
            *slot = Some(Bdd::from_node(m.permute(b.node(), &var_perm)));
        }
    }
    for s in input_slots.iter_mut() {
        *s = placement[*s];
    }
    true
}

/// Adds two partial sums under the working budget (infallible: runs with
/// an unlimited resource budget).
#[allow(clippy::too_many_arguments)]
fn merge_bounded(
    m: &mut Manager,
    a: Add,
    b: Add,
    max_nodes: Option<usize>,
    quantum: f64,
    strategy: ApproxStrategy,
    mixture: &[(ChainMeasure, f64)],
    rounds: &mut usize,
    collapsed: &mut usize,
) -> Add {
    try_merge_bounded(
        m,
        a,
        b,
        max_nodes,
        quantum,
        strategy,
        mixture,
        rounds,
        collapsed,
        &Budget::unlimited(),
    )
    .expect("unlimited budget cannot be exceeded")
}

/// Adds two partial sums under the working budget.
///
/// Summing diagrams over weakly overlapping supports can blow up
/// multiplicatively (`|A|·|B|` apply cost), so operands are pre-shrunk
/// until the product of their sizes is bounded; the sum is then quantized
/// and, if still above the working slack, collapsed back to `max`. Only
/// the `add_plus` apply itself can trip the resource budget; the
/// approximation passes shrink the arena and run to completion.
#[allow(clippy::too_many_arguments)]
fn try_merge_bounded(
    m: &mut Manager,
    a: Add,
    b: Add,
    max_nodes: Option<usize>,
    quantum: f64,
    strategy: ApproxStrategy,
    mixture: &[(ChainMeasure, f64)],
    rounds: &mut usize,
    collapsed: &mut usize,
    budget: &Budget,
) -> Result<Add, DdError> {
    let (mut a, mut b) = (a, b);
    if let Some(max) = max_nodes {
        // Bound the apply's worst case to a few million node visits.
        let limit = 4_000_000usize.max(16 * max);
        loop {
            let (sa, sb) = (m.size(a.node()), m.size(b.node()));
            if sa.saturating_mul(sb) <= limit {
                break;
            }
            let (big, small) = if sa >= sb { (&mut a, sb) } else { (&mut b, sa) };
            let target = (limit / small.max(1)).max(max / 2).max(64);
            let (shrunk, out) = approximate_to_mixture(m, *big, target, strategy, mixture);
            *big = shrunk;
            *rounds += out.rounds;
            *collapsed += out.nodes_collapsed;
            if m.size(big.node()) >= if sa >= sb { sa } else { sb } {
                break; // cannot shrink further; accept the apply cost
            }
        }
    }
    let mut sum = m.try_add_plus(a, b, budget)?;
    if max_nodes.is_some() {
        sum = quantize(m, sum, quantum, strategy);
    }
    if let Some(max) = max_nodes {
        if m.size(sum.node()) > 2 * max {
            let (s2, out) = approximate_to_mixture(m, sum, max, strategy, mixture);
            sum = s2;
            *rounds += out.rounds;
            *collapsed += out.nodes_collapsed;
        }
    }
    Ok(sum)
}

/// Snaps every terminal to a multiple of `quantum` — round-to-nearest for
/// average models, round-up for upper bounds (which keeps them
/// conservative). Exact zero stays exact so diagonal gating is unaffected.
fn quantize(m: &mut Manager, f: Add, quantum: f64, strategy: ApproxStrategy) -> Add {
    m.add_map_terminals(f, |v| {
        if v == 0.0 {
            0.0
        } else {
            match strategy {
                ApproxStrategy::Average => (v / quantum).round() * quantum,
                ApproxStrategy::UpperBound => (v / quantum).ceil() * quantum,
            }
        }
    })
}

/// The BDD of "at least one input toggles": `OR_k (xₖⁱ ⊕ xₖᶠ)`.
fn any_toggle_bdd(
    m: &mut Manager,
    n: usize,
    ordering: VariableOrdering,
    input_slots: &[usize],
) -> Bdd {
    let mut any = m.bdd_false();
    for &slot in input_slots.iter().take(n) {
        let a = m.bdd_var(ordering.xi_var(slot, n));
        let b = m.bdd_var(ordering.xf_var(slot, n));
        let t = m.bdd_xor(a, b);
        any = m.bdd_or(any, t);
    }
    any
}

/// The BDD of one library cell applied to fan-in BDDs, under `budget`.
fn try_gate_bdd(
    m: &mut Manager,
    kind: CellKind,
    pins: &[Bdd],
    budget: &Budget,
) -> Result<Bdd, DdError> {
    Ok(match kind {
        CellKind::Inv => m.try_bdd_not(pins[0], budget)?,
        CellKind::Buf => pins[0],
        CellKind::Nand2 => {
            let a = m.try_bdd_and(pins[0], pins[1], budget)?;
            m.try_bdd_not(a, budget)?
        }
        CellKind::Nand3 => {
            let a = m.try_bdd_and(pins[0], pins[1], budget)?;
            let a = m.try_bdd_and(a, pins[2], budget)?;
            m.try_bdd_not(a, budget)?
        }
        CellKind::Nand4 => {
            let a = m.try_bdd_and(pins[0], pins[1], budget)?;
            let b = m.try_bdd_and(pins[2], pins[3], budget)?;
            let a = m.try_bdd_and(a, b, budget)?;
            m.try_bdd_not(a, budget)?
        }
        CellKind::Nor2 => {
            let a = m.try_bdd_or(pins[0], pins[1], budget)?;
            m.try_bdd_not(a, budget)?
        }
        CellKind::Nor3 => {
            let a = m.try_bdd_or(pins[0], pins[1], budget)?;
            let a = m.try_bdd_or(a, pins[2], budget)?;
            m.try_bdd_not(a, budget)?
        }
        CellKind::Nor4 => {
            let a = m.try_bdd_or(pins[0], pins[1], budget)?;
            let b = m.try_bdd_or(pins[2], pins[3], budget)?;
            let a = m.try_bdd_or(a, b, budget)?;
            m.try_bdd_not(a, budget)?
        }
        CellKind::And2 => m.try_bdd_and(pins[0], pins[1], budget)?,
        CellKind::And3 => {
            let a = m.try_bdd_and(pins[0], pins[1], budget)?;
            m.try_bdd_and(a, pins[2], budget)?
        }
        CellKind::Or2 => m.try_bdd_or(pins[0], pins[1], budget)?,
        CellKind::Or3 => {
            let a = m.try_bdd_or(pins[0], pins[1], budget)?;
            m.try_bdd_or(a, pins[2], budget)?
        }
        CellKind::Xor2 => m.try_bdd_xor(pins[0], pins[1], budget)?,
        CellKind::Xnor2 => m.try_bdd_xnor(pins[0], pins[1], budget)?,
        CellKind::Mux2 => m.try_bdd_ite(pins[0], pins[2], pins[1], budget)?,
        CellKind::Aoi21 => {
            let a = m.try_bdd_and(pins[0], pins[1], budget)?;
            let o = m.try_bdd_or(a, pins[2], budget)?;
            m.try_bdd_not(o, budget)?
        }
        CellKind::Oai21 => {
            let o = m.try_bdd_or(pins[0], pins[1], budget)?;
            let a = m.try_bdd_and(o, pins[2], budget)?;
            m.try_bdd_not(a, budget)?
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PowerModel;
    use charfree_netlist::benchmarks::paper_unit;
    use charfree_netlist::Library;
    use charfree_sim::{ExhaustivePairs, ZeroDelaySim};

    #[test]
    fn exact_model_reproduces_fig2_lut() {
        let unit = paper_unit();
        let model = ModelBuilder::new(&unit).build();
        assert!(model.report().exact);
        // Fig. 2b rows (xi, xf, C in fF).
        let rows = [
            ((false, false), (false, false), 0.0),
            ((false, false), (false, true), 10.0),
            ((false, false), (true, false), 10.0),
            ((false, false), (true, true), 10.0),
            ((true, true), (false, false), 90.0),
        ];
        for ((a, b), (c, d), want) in rows {
            let got = model.capacitance(&[a, b], &[c, d]).femtofarads();
            assert_eq!(got, want, "xi=({a},{b}) xf=({c},{d})");
        }
    }

    #[test]
    fn exact_model_equals_gate_level_simulation_everywhere() {
        let lib = Library::test_library();
        for netlist in [
            paper_unit(),
            charfree_netlist::benchmarks::decod(&lib),
            charfree_netlist::benchmarks::random_logic("t", 6, 25, 3, &lib),
        ] {
            let sim = ZeroDelaySim::new(&netlist);
            let model = ModelBuilder::new(&netlist).build();
            assert!(model.report().exact, "{}", netlist.name());
            for (xi, xf) in ExhaustivePairs::new(netlist.num_inputs() as u32) {
                let want = sim.switching_capacitance(&xi, &xf).femtofarads();
                let got = model.capacitance(&xi, &xf).femtofarads();
                assert!(
                    (got - want).abs() < 1e-9,
                    "{}: xi={xi:?} xf={xf:?}: {got} vs {want}",
                    netlist.name()
                );
            }
        }
    }

    #[test]
    fn both_orderings_agree() {
        let lib = Library::test_library();
        let netlist = charfree_netlist::benchmarks::decod(&lib);
        let a = ModelBuilder::new(&netlist)
            .ordering(VariableOrdering::Interleaved)
            .build();
        let b = ModelBuilder::new(&netlist)
            .ordering(VariableOrdering::Grouped)
            .build();
        for (xi, xf) in ExhaustivePairs::new(5).take(256) {
            assert_eq!(
                a.capacitance(&xi, &xf).femtofarads(),
                b.capacitance(&xi, &xf).femtofarads()
            );
        }
    }

    #[test]
    fn bounded_build_respects_max() {
        let lib = Library::test_library();
        let netlist = charfree_netlist::benchmarks::cm85(&lib);
        for max in [200, 50, 10, 5] {
            let model = ModelBuilder::new(&netlist).max_nodes(max).build();
            assert!(model.size() <= max, "MAX={max}, size={}", model.size());
            assert!(!model.report().exact);
        }
    }

    #[test]
    fn bounded_average_build_preserves_global_average() {
        // The Section 3.1 invariant: avg-collapse commutes with summation,
        // so even an aggressively approximated model keeps the exact
        // average switched capacitance.
        let lib = Library::test_library();
        let netlist = charfree_netlist::benchmarks::decod(&lib);
        let exact = ModelBuilder::new(&netlist).build();
        let rough = ModelBuilder::new(&netlist)
            .max_nodes(8)
            .collapse_toggles(&[0.5])
            .leaf_recalibration(false)
            .diagonal_gating(false)
            .build();
        // Exact up to terminal quantization (total_load / 2^14 grid).
        let tolerance = netlist.total_load().femtofarads() / 8192.0;
        assert!(
            (exact.average_capacitance().femtofarads() - rough.average_capacitance().femtofarads())
                .abs()
                < tolerance
        );
    }

    #[test]
    fn bounded_upper_bound_build_is_conservative() {
        let lib = Library::test_library();
        let netlist = charfree_netlist::benchmarks::decod(&lib);
        let sim = ZeroDelaySim::new(&netlist);
        let bound = ModelBuilder::new(&netlist)
            .max_nodes(12)
            .strategy(ApproxStrategy::UpperBound)
            .build();
        for (xi, xf) in ExhaustivePairs::new(5) {
            let exact = sim.switching_capacitance(&xi, &xf).femtofarads();
            let ub = bound.capacitance(&xi, &xf).femtofarads();
            assert!(ub >= exact - 1e-9, "xi={xi:?} xf={xf:?}: {ub} < {exact}");
        }
    }

    #[test]
    fn worst_case_transition_achieves_model_max() {
        let lib = Library::test_library();
        let netlist = charfree_netlist::benchmarks::decod(&lib);
        let model = ModelBuilder::new(&netlist).build();
        let (xi, xf) = model.worst_case_transition();
        assert_eq!(
            model.capacitance(&xi, &xf),
            model.max_capacitance(),
            "picked transition must realize the max"
        );
        // And for an exact model the simulator agrees.
        let sim = ZeroDelaySim::new(&netlist);
        assert_eq!(sim.switching_capacitance(&xi, &xf), model.max_capacitance());
    }

    #[test]
    fn compaction_does_not_change_results() {
        let lib = Library::test_library();
        let netlist = charfree_netlist::benchmarks::cm85(&lib);
        let every_gate = ModelBuilder::new(&netlist).compact_every(1).build();
        let never = ModelBuilder::new(&netlist)
            .compact_every(usize::MAX)
            .build();
        for (xi, xf) in ExhaustivePairs::new(11).take(512) {
            assert_eq!(
                every_gate.capacitance(&xi, &xf),
                never.capacitance(&xi, &xf)
            );
        }
    }

    #[test]
    fn report_displays() {
        let model = ModelBuilder::new(&paper_unit()).build();
        let text = model.report().to_string();
        assert!(text.contains("exact"));
        assert!(model.size() > 1);
    }
}
