//! Analytic terminal recalibration.
//!
//! Node collapsing replaces sub-functions with constants, which flattens
//! the model's response to input statistics: under a transition measure
//! with toggle rate `t`, the approximated model acquires a systematic bias
//! `B(t) = E_t[model] − E_t[exact]` (positive at low activity, negative at
//! high activity). Both sides of that bias are *analytically* computable —
//! `E_t[model]` from the model ADD's measured profile, `E_t[exact]` from
//! the per-gate rising-condition BDDs as `Σⱼ Cⱼ·P_t(riseⱼ)` — so the bias
//! can be cancelled **without any simulation**, in keeping with the
//! paper's characterization-free premise.
//!
//! The correction only changes terminal *values* (never the diagram
//! structure, so the node budget is untouched): it minimizes
//!
//! ```text
//! λ·Σ_ℓ r_ℓ·δ_ℓ²  +  Σ_t w_t·(B_t + Σ_ℓ q_t(ℓ)·δ_ℓ)²
//! ```
//!
//! over per-terminal shifts `δ_ℓ`, where `q_t(ℓ)` is terminal `ℓ`'s reach
//! probability under measure `t` and `r_ℓ` its mixture reach. The zero
//! terminal is pinned (the no-transition diagonal stays exactly zero) and
//! shifted values are clamped non-negative. This is an extension over the
//! paper (see DESIGN.md §5) and applies to average-accuracy models only —
//! an upper bound must never be lowered.

use charfree_dd::hash::FxHashMap;
use charfree_dd::{Add, ChainMeasure, Manager, NodeId};

/// Per-measure analytic means of the golden model, accumulated during
/// construction: `exact_means[t] = Σⱼ Cⱼ·P_t(riseⱼ)`.
#[derive(Debug, Clone)]
pub(crate) struct ExactMeans(pub Vec<f64>);

/// Shifts the terminal values of `model` to cancel the per-measure mean
/// bias against `exact` (see module docs). Returns the recalibrated ADD.
///
/// `ridge` (λ) trades pointwise fidelity for bias cancellation; `0.05` is
/// a robust default.
pub(crate) fn recalibrate_leaves(
    m: &mut Manager,
    model: Add,
    mixture: &[(ChainMeasure, f64)],
    exact_means: &ExactMeans,
    ridge: f64,
) -> Add {
    assert_eq!(mixture.len(), exact_means.0.len(), "measure count mismatch");
    let t_count = mixture.len();
    if model.node().is_terminal() && m.terminal_value(model.node()) == 0.0 {
        return model;
    }

    // Reach of every terminal under every measure, and the model means.
    let mut q: Vec<FxHashMap<NodeId, f64>> = Vec::with_capacity(t_count);
    let mut bias = vec![0.0f64; t_count];
    for (t, (measure, _)) in mixture.iter().enumerate() {
        let profile = m.add_measured_profile(model, measure);
        let mut model_mean = 0.0f64;
        let mut terms: FxHashMap<NodeId, f64> = FxHashMap::default();
        for (&id, node) in &profile {
            if id.is_terminal() {
                let v = m.terminal_value(id);
                model_mean += node.reach * v;
                if v != 0.0 {
                    terms.insert(id, node.reach);
                }
            }
        }
        bias[t] = model_mean - exact_means.0[t];
        q.push(terms);
    }

    // All adjustable terminals (non-zero values).
    let terminals: Vec<NodeId> = {
        let mut set: Vec<NodeId> = q.iter().flat_map(|map| map.keys().copied()).collect();
        set.sort();
        set.dedup();
        set
    };
    if terminals.is_empty() {
        return model;
    }

    // Mixture reach r_ℓ.
    let weights: Vec<f64> = mixture.iter().map(|&(_, w)| w).collect();
    let r: Vec<f64> = terminals
        .iter()
        .map(|id| {
            weights
                .iter()
                .zip(&q)
                .map(|(w, map)| w * map.get(id).copied().unwrap_or(0.0))
                .sum::<f64>()
                .max(1e-12)
        })
        .collect();

    // Solve (I + M/λ)·u = B with M[s][t] = w_t·Σ_ℓ q_s(ℓ)q_t(ℓ)/r_ℓ.
    let mut system: Vec<Vec<f64>> = vec![vec![0.0; t_count]; t_count];
    for s in 0..t_count {
        for t in 0..t_count {
            let mut acc = 0.0;
            for (l, id) in terminals.iter().enumerate() {
                let qs = q[s].get(id).copied().unwrap_or(0.0);
                let qt = q[t].get(id).copied().unwrap_or(0.0);
                acc += qs * qt / r[l];
            }
            system[s][t] = weights[t] * acc / ridge + if s == t { 1.0 } else { 0.0 };
        }
    }
    let u = crate::linalg::least_squares(&system, &bias);

    // δ_ℓ = −(1/λ r_ℓ)·Σ_t w_t q_t(ℓ) u_t, then clamp values at zero.
    let mut new_value: FxHashMap<u64, f64> = FxHashMap::default();
    for (l, id) in terminals.iter().enumerate() {
        let mut shift = 0.0;
        for t in 0..t_count {
            shift += weights[t] * q[t].get(id).copied().unwrap_or(0.0) * u[t];
        }
        let delta = -shift / (ridge * r[l]);
        let old = m.terminal_value(*id);
        new_value.insert(old.to_bits(), (old + delta).max(0.0));
    }
    m.add_map_terminals(model, |v| new_value.get(&v.to_bits()).copied().unwrap_or(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use charfree_dd::Var;

    /// A two-pair transition space with a hand-made biased model.
    #[test]
    fn recalibration_reduces_mean_bias() {
        let pairs = 2u32;
        let mut m = Manager::new(2 * pairs);
        // "Exact" function: 10 per toggled input.
        let mut exact = m.add_zero();
        for k in 0..pairs {
            let a = m.bdd_var(Var(2 * k));
            let b = m.bdd_var(Var(2 * k + 1));
            let t = m.bdd_xor(a, b);
            let d = m.add_scale(t.as_add(), 10.0);
            exact = m.add_plus(exact, d);
        }
        // Model: only tracks the first pair, second contributes its
        // uniform average (5) unconditionally off-diagonal — biased.
        let a = m.bdd_var(Var(0));
        let b = m.bdd_var(Var(1));
        let t0 = m.bdd_xor(a, b);
        let c10 = m.add_scale(t0.as_add(), 10.0);
        let c5 = m.constant(5.0);
        let model = m.add_plus(c10, c5);

        let toggles = [0.1, 0.5, 0.9];
        let mixture: Vec<(ChainMeasure, f64)> = toggles
            .iter()
            .map(|&t| {
                (
                    ChainMeasure::interleaved_transitions(pairs, 0.5, t),
                    1.0 / 3.0,
                )
            })
            .collect();
        let exact_means = ExactMeans(
            mixture
                .iter()
                .map(|(measure, _)| {
                    let p = m.add_measured_profile(exact, measure);
                    p[&exact.node()].stats.avg
                })
                .collect(),
        );

        let bias_of = |m: &Manager, f: Add| -> Vec<f64> {
            mixture
                .iter()
                .zip(&exact_means.0)
                .map(|((measure, _), &em)| {
                    m.add_measured_profile(f, measure)[&f.node()].stats.avg - em
                })
                .collect()
        };
        let before = bias_of(&m, model);
        let recal = recalibrate_leaves(&mut m, model, &mixture, &exact_means, 0.05);
        let after = bias_of(&m, recal);
        let norm = |b: &[f64]| b.iter().map(|x| x * x).sum::<f64>();
        assert!(
            norm(&after) < norm(&before) * 0.2,
            "bias must shrink: {before:?} -> {after:?}"
        );
    }

    #[test]
    fn zero_terminal_is_pinned() {
        let mut m = Manager::new(2);
        let a = m.bdd_var(Var(0));
        let b = m.bdd_var(Var(1));
        let t = m.bdd_xor(a, b);
        let model = m.add_scale(t.as_add(), 8.0);
        let mixture = vec![(ChainMeasure::interleaved_transitions(1, 0.5, 0.3), 1.0)];
        let exact_means = ExactMeans(vec![0.3 * 10.0]);
        let recal = recalibrate_leaves(&mut m, model, &mixture, &exact_means, 0.05);
        // Diagonal (no toggle) must stay exactly zero.
        assert_eq!(m.add_eval(recal, &[false, false]), 0.0);
        assert_eq!(m.add_eval(recal, &[true, true]), 0.0);
        // The 8.0 leaf moves toward 10.0.
        let toggled = m.add_eval(recal, &[true, false]);
        assert!(toggled > 8.0 && toggled <= 10.5, "got {toggled}");
    }

    #[test]
    fn constant_zero_model_is_untouched() {
        let mut m = Manager::new(2);
        let model = m.add_zero();
        let mixture = vec![(ChainMeasure::interleaved_transitions(1, 0.5, 0.3), 1.0)];
        let exact_means = ExactMeans(vec![1.0]);
        let recal = recalibrate_leaves(&mut m, model, &mixture, &exact_means, 0.05);
        assert_eq!(recal, model);
    }
}
