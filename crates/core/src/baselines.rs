//! Characterization-based baseline models (`Con` and `Lin` of Section 4)
//! and the simulation-driven characterization procedure they require.
//!
//! These are exactly what the paper argues *against*: black-box models
//! tuned to fit a sample of gate-level power measurements. They are needed
//! to reproduce every comparison in Fig. 7 and Table 1.

use crate::linalg::least_squares;
use crate::model::PowerModel;
use charfree_netlist::units::Capacitance;
use charfree_sim::{MarkovSource, ZeroDelaySim};

/// A characterization sample: observed transitions and their gate-level
/// switched capacitances.
#[derive(Debug, Clone)]
pub struct TrainingSet {
    /// The simulated input patterns (length `T`).
    pub patterns: Vec<Vec<bool>>,
    /// Per-transition switched capacitance from the golden model
    /// (length `T − 1`, entry `t` is for `patterns[t] → patterns[t+1]`).
    pub switched: Vec<Capacitance>,
}

impl TrainingSet {
    /// Characterizes against `sim` with the paper's protocol: a random
    /// sequence with 0.5 average signal and transition probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `length < 2`.
    pub fn sample(sim: &ZeroDelaySim, length: usize, seed: u64) -> Self {
        Self::sample_with_statistics(sim, length, 0.5, 0.5, seed)
    }

    /// Characterizes with explicit `(sp, st)` input statistics.
    ///
    /// # Panics
    ///
    /// Panics if `length < 2` or the statistics are infeasible.
    pub fn sample_with_statistics(
        sim: &ZeroDelaySim,
        length: usize,
        sp: f64,
        st: f64,
        seed: u64,
    ) -> Self {
        assert!(length >= 2, "need at least two patterns");
        let mut source =
            MarkovSource::new(sim.num_inputs(), sp, st, seed).expect("feasible statistics");
        let patterns = source.sequence(length);
        let switched = sim.switching_trace(&patterns);
        TrainingSet { patterns, switched }
    }

    /// Number of observed transitions.
    pub fn len(&self) -> usize {
        self.switched.len()
    }

    /// `true` if the sample has no transitions.
    pub fn is_empty(&self) -> bool {
        self.switched.is_empty()
    }

    /// Mean observed switched capacitance.
    pub fn mean(&self) -> Capacitance {
        Capacitance(self.switched.iter().map(|c| c.femtofarads()).sum::<f64>() / self.len() as f64)
    }

    /// Largest observed switched capacitance.
    pub fn max(&self) -> Capacitance {
        Capacitance(
            self.switched
                .iter()
                .map(|c| c.femtofarads())
                .fold(f64::NEG_INFINITY, f64::max),
        )
    }
}

/// `Con`: the constant estimator — predicts the same capacitance for every
/// transition.
///
/// Characterized as the sample mean ([`ConstantModel::fit`]); the
/// upper-bound variant uses a maximum instead
/// ([`ConstantModel::from_capacitance`] with a model max, per the paper:
/// "as a constant estimator we used the maximum value of the
/// pattern-dependent upper bound").
#[derive(Debug, Clone, PartialEq)]
pub struct ConstantModel {
    value: Capacitance,
    display_name: String,
}

impl ConstantModel {
    /// Fits the constant to the sample mean.
    pub fn fit(training: &TrainingSet) -> Self {
        ConstantModel {
            value: training.mean(),
            display_name: "Con".to_owned(),
        }
    }

    /// Wraps a fixed capacitance (e.g. a worst-case constant).
    pub fn from_capacitance(value: Capacitance, name: impl Into<String>) -> Self {
        ConstantModel {
            value,
            display_name: name.into(),
        }
    }

    /// The constant prediction.
    pub fn value(&self) -> Capacitance {
        self.value
    }
}

impl PowerModel for ConstantModel {
    fn capacitance(&self, _xi: &[bool], _xf: &[bool]) -> Capacitance {
        self.value
    }

    fn name(&self) -> &str {
        &self.display_name
    }
}

/// `Lin`: the linear estimator
/// `C = c₀ + c₁·a₁ + … + c_n·a_n` with `a_j = x_jⁱ ⊕ x_jᶠ`
/// (one indicator per toggling input), least-squares characterized.
///
/// # Examples
///
/// ```
/// use charfree_core::{LinearModel, PowerModel, TrainingSet};
/// use charfree_netlist::benchmarks::paper_unit;
/// use charfree_sim::ZeroDelaySim;
///
/// let sim = ZeroDelaySim::new(&paper_unit());
/// let training = TrainingSet::sample(&sim, 2000, 7);
/// let lin = LinearModel::fit(&training);
/// let c = lin.capacitance(&[true, true], &[false, false]);
/// assert!(c.femtofarads() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    /// `[c₀, c₁, …, c_n]`.
    coefficients: Vec<f64>,
    display_name: String,
}

impl LinearModel {
    /// Least-squares fit of the `n + 1` coefficients on the sample.
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty.
    pub fn fit(training: &TrainingSet) -> Self {
        assert!(!training.is_empty(), "empty training set");
        let n = training.patterns[0].len();
        let rows: Vec<Vec<f64>> = training
            .switched
            .iter()
            .enumerate()
            .map(|(t, _)| {
                let mut row = Vec::with_capacity(n + 1);
                row.push(1.0);
                for j in 0..n {
                    let toggled = training.patterns[t][j] != training.patterns[t + 1][j];
                    row.push(if toggled { 1.0 } else { 0.0 });
                }
                row
            })
            .collect();
        let y: Vec<f64> = training.switched.iter().map(|c| c.femtofarads()).collect();
        LinearModel {
            coefficients: least_squares(&rows, &y),
            display_name: "Lin".to_owned(),
        }
    }

    /// The fitted coefficients `[c₀, c₁, …, c_n]`.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }
}

impl PowerModel for LinearModel {
    /// The linear prediction. Unconstrained least squares can undershoot
    /// below zero out-of-sample; the raw value is returned, as in the
    /// paper's formulation.
    fn capacitance(&self, xi: &[bool], xf: &[bool]) -> Capacitance {
        assert_eq!(
            xi.len() + 1,
            self.coefficients.len(),
            "pattern width mismatch"
        );
        let mut c = self.coefficients[0];
        for j in 0..xi.len() {
            if xi[j] != xf[j] {
                c += self.coefficients[j + 1];
            }
        }
        Capacitance(c)
    }

    fn name(&self) -> &str {
        &self.display_name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charfree_netlist::benchmarks::paper_unit;
    use charfree_netlist::{benchmarks, Library};
    use charfree_sim::ExhaustivePairs;

    #[test]
    fn training_set_statistics() {
        let sim = ZeroDelaySim::new(&paper_unit());
        let t = TrainingSet::sample(&sim, 1000, 1);
        assert_eq!(t.len(), 999);
        assert!(!t.is_empty());
        assert!(t.mean().femtofarads() > 0.0);
        assert!(t.max() >= t.mean());
        // 100 fF is the absolute worst case (all three gates rise).
        assert!(t.max().femtofarads() <= 100.0);
    }

    #[test]
    fn constant_model_predicts_sample_mean() {
        let sim = ZeroDelaySim::new(&paper_unit());
        let t = TrainingSet::sample(&sim, 2000, 2);
        let con = ConstantModel::fit(&t);
        assert_eq!(con.name(), "Con");
        assert_eq!(con.value(), t.mean());
        assert_eq!(
            con.capacitance(&[false, false], &[true, true]),
            con.capacitance(&[true, true], &[false, false]),
        );
    }

    #[test]
    fn linear_model_learns_additive_structure() {
        // On a circuit whose switched capacitance is close to
        // additive-in-toggles (the parity tree, in-sample), Lin should beat
        // Con on its own training data.
        let lib = Library::test_library();
        let netlist = benchmarks::parity(&lib);
        let sim = ZeroDelaySim::new(&netlist);
        let t = TrainingSet::sample(&sim, 4000, 3);
        let con = ConstantModel::fit(&t);
        let lin = LinearModel::fit(&t);
        let rss = |model: &dyn PowerModel| -> f64 {
            t.switched
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let p = model
                        .capacitance(&t.patterns[i], &t.patterns[i + 1])
                        .femtofarads();
                    (p - c.femtofarads()).powi(2)
                })
                .sum()
        };
        assert!(rss(&lin) < rss(&con), "Lin must fit better in-sample");
        assert_eq!(lin.coefficients().len(), 17);
    }

    #[test]
    fn linear_model_exact_on_truly_linear_circuit() {
        // The paper unit: C = 40·[x1 falls] + 50·[x2 falls] + 10·[or rises]
        // is not linear in toggles, but a bank of independent inverters is.
        let mut n = charfree_netlist::Netlist::new("invbank");
        let lib = Library::test_library();
        for i in 0..4 {
            let x = n.add_input(format!("x{i}")).expect("fresh");
            let y = n
                .add_gate(charfree_netlist::CellKind::Inv, &[x])
                .expect("ok");
            n.mark_output(y).expect("ok");
        }
        n.annotate_loads(&lib);
        let sim = ZeroDelaySim::new(&n);
        let t = TrainingSet::sample(&sim, 4000, 5);
        let lin = LinearModel::fit(&t);
        // An inverter output rises exactly when its input falls; over a
        // random toggle the expectation is load/2 per toggle... but the
        // *pattern-dependent* truth is not a function of toggles alone
        // (direction matters), so we only check aggregate behavior: the
        // fitted toggle weight should approximate half the inverter load.
        let load = n.gate(n.driver(n.outputs()[0]).expect("driven")).load();
        for j in 1..=4 {
            assert!(
                (lin.coefficients()[j] - load.femtofarads() / 2.0).abs() < load.femtofarads() * 0.2,
                "coefficient {j} = {}",
                lin.coefficients()[j]
            );
        }
    }

    #[test]
    fn exhaustive_error_of_baselines_is_nonzero() {
        // Neither baseline can be exact on the paper unit: pattern
        // dependence is richer than toggles.
        let sim = ZeroDelaySim::new(&paper_unit());
        let t = TrainingSet::sample(&sim, 4000, 8);
        let con = ConstantModel::fit(&t);
        let lin = LinearModel::fit(&t);
        let mut worst_con = 0.0f64;
        let mut worst_lin = 0.0f64;
        for (xi, xf) in ExhaustivePairs::new(2) {
            let truth = sim.switching_capacitance(&xi, &xf).femtofarads();
            worst_con = worst_con.max((con.capacitance(&xi, &xf).femtofarads() - truth).abs());
            worst_lin = worst_lin.max((lin.capacitance(&xi, &xf).femtofarads() - truth).abs());
        }
        assert!(worst_con > 1.0);
        assert!(worst_lin > 1.0);
    }

    #[test]
    fn from_capacitance_names_and_values() {
        let c = ConstantModel::from_capacitance(Capacitance(123.0), "Con-max");
        assert_eq!(c.name(), "Con-max");
        assert_eq!(c.capacitance(&[], &[]).femtofarads(), 123.0);
    }
}
