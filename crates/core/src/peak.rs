//! Symbolic peak-power queries.
//!
//! The paper motivates pattern-dependent models partly through peak-power
//! analysis: "they can be used to estimate peak power as well as average
//! power dissipation". With the switched capacitance represented as an
//! ADD, peak queries become *symbolic*: the worst transitions at every
//! level are read directly off the diagram's terminals instead of being
//! hunted by simulation (which the paper notes is hopeless — the search
//! space is all `4ⁿ` pattern pairs).

use crate::model::AddPowerModel;
use charfree_dd::Bdd;
use charfree_netlist::units::Capacitance;

/// A transition witness: the `(xⁱ, xᶠ)` pattern pair.
pub type Transition = (Vec<bool>, Vec<bool>);

/// One level of the model's switched-capacitance spectrum.
#[derive(Debug, Clone)]
pub struct PeakLevel {
    /// The capacitance value of this level.
    pub capacitance: Capacitance,
    /// Number of `(xⁱ, xᶠ)` transitions attaining exactly this value.
    pub count: f64,
    /// One witness transition attaining it.
    pub witness: (Vec<bool>, Vec<bool>),
}

impl AddPowerModel {
    /// The `k` highest capacitance levels of the model, descending, each
    /// with its exact transition count and a witness pattern pair.
    ///
    /// For an exact model this is the true peak spectrum of the macro; for
    /// an upper-bound model it is a conservative spectrum (every true
    /// transition cost is dominated). Runs in `O(k · |model|)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use charfree_core::ModelBuilder;
    /// use charfree_netlist::benchmarks::paper_unit;
    ///
    /// let model = ModelBuilder::new(&paper_unit()).build();
    /// let spectrum = model.peak_spectrum(2);
    /// assert_eq!(spectrum[0].capacitance.femtofarads(), 90.0);
    /// assert_eq!(spectrum[0].count, 1.0); // only 11 -> 00 switches both inverters
    /// ```
    pub fn peak_spectrum(&self, k: usize) -> Vec<PeakLevel> {
        let mut m = self.manager.clone();
        let mut values = m.terminal_values(self.root.node());
        values.reverse(); // descending
        let mut out = Vec::with_capacity(k.min(values.len()));
        for value in values.into_iter().take(k) {
            let level: Bdd = m.add_threshold(self.root, |v| v == value);
            let count = m.sat_count(level);
            let assignment = m.pick_sat(level).expect("level set is non-empty");
            let witness = self.split_assignment(&assignment);
            out.push(PeakLevel {
                capacitance: Capacitance(value),
                count,
                witness,
            });
        }
        out
    }

    /// All transitions whose predicted capacitance is at least
    /// `threshold`, returned as an exact count plus up to `max_witnesses`
    /// sample transitions.
    ///
    /// Useful for power-integrity sign-off: "which vectors can draw more
    /// than X?" is a symbolic query, not a simulation campaign.
    pub fn transitions_above(
        &self,
        threshold: Capacitance,
        max_witnesses: usize,
    ) -> (f64, Vec<Transition>) {
        let mut m = self.manager.clone();
        let level = m.add_threshold(self.root, |v| v >= threshold.femtofarads());
        let count = m.sat_count(level);
        let mut witnesses = Vec::new();
        let mut remaining = level;
        for _ in 0..max_witnesses {
            match m.pick_sat(remaining) {
                None => break,
                Some(assignment) => {
                    witnesses.push(self.split_assignment(&assignment));
                    // Exclude this exact assignment and continue.
                    let mut cube = m.bdd_true();
                    for (v, &bit) in assignment.iter().enumerate() {
                        let var = m.bdd_var(charfree_dd::Var(v as u32));
                        let lit = if bit { var } else { m.bdd_not(var) };
                        cube = m.bdd_and(cube, lit);
                    }
                    remaining = m.bdd_diff(remaining, cube);
                }
            }
        }
        (count, witnesses)
    }

    fn split_assignment(&self, assignment: &[bool]) -> (Vec<bool>, Vec<bool>) {
        let n = self.num_inputs;
        let mut xi = vec![false; n];
        let mut xf = vec![false; n];
        for i in 0..n {
            let slot = self.input_slots[i];
            xi[i] = assignment[self.ordering.xi_var(slot, n).index() as usize];
            xf[i] = assignment[self.ordering.xf_var(slot, n).index() as usize];
        }
        (xi, xf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::model::PowerModel;
    use crate::ApproxStrategy;
    use charfree_netlist::benchmarks::{self, paper_unit};
    use charfree_netlist::Library;
    use charfree_sim::{ExhaustivePairs, ZeroDelaySim};

    #[test]
    fn spectrum_matches_exhaustive_enumeration() {
        let library = Library::test_library();
        let netlist = benchmarks::decod(&library);
        let model = ModelBuilder::new(&netlist).build();
        let sim = ZeroDelaySim::new(&netlist);

        // Brute-force the value histogram.
        let mut histogram: std::collections::BTreeMap<u64, usize> = Default::default();
        for (xi, xf) in ExhaustivePairs::new(5) {
            let c = sim.switching_capacitance(&xi, &xf).femtofarads();
            *histogram.entry(c.to_bits()).or_insert(0) += 1;
        }
        let mut want: Vec<(f64, usize)> = histogram
            .into_iter()
            .map(|(bits, count)| (f64::from_bits(bits), count))
            .collect();
        want.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));

        let spectrum = model.peak_spectrum(4);
        assert_eq!(spectrum.len(), 4);
        for (level, (value, count)) in spectrum.iter().zip(want) {
            assert_eq!(level.capacitance.femtofarads(), value);
            assert_eq!(level.count, count as f64);
            // The witness must actually attain the level.
            assert_eq!(
                sim.switching_capacitance(&level.witness.0, &level.witness.1)
                    .femtofarads(),
                value
            );
        }
    }

    #[test]
    fn paper_unit_peak_is_90() {
        let model = ModelBuilder::new(&paper_unit()).build();
        let spectrum = model.peak_spectrum(16);
        assert_eq!(spectrum[0].capacitance.femtofarads(), 90.0);
        assert_eq!(spectrum[0].count, 1.0);
        assert_eq!(spectrum[0].witness.0, vec![true, true]);
        assert_eq!(spectrum[0].witness.1, vec![false, false]);
        // Counts across all levels must cover the full 4^2 space.
        let total: f64 = spectrum.iter().map(|l| l.count).sum();
        assert_eq!(total, 16.0);
    }

    #[test]
    fn transitions_above_threshold() {
        let model = ModelBuilder::new(&paper_unit()).build();
        let (count, witnesses) = model.transitions_above(Capacitance(50.0), 8);
        // Fig. 2b rows with C >= 50: one at 90 fF (11 -> 00) and three at
        // 50 fF (01 -> 00, 11 -> 10, 01 -> 10).
        assert_eq!(count, 4.0);
        assert_eq!(witnesses.len(), 4);
        let sim = ZeroDelaySim::new(&paper_unit());
        for (xi, xf) in &witnesses {
            assert!(sim.switching_capacitance(xi, xf).femtofarads() >= 50.0);
        }
        // Distinct witnesses.
        let unique: std::collections::HashSet<_> = witnesses.iter().collect();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn upper_bound_spectrum_dominates() {
        let library = Library::test_library();
        let netlist = benchmarks::decod(&library);
        let bound = ModelBuilder::new(&netlist)
            .max_nodes(60)
            .strategy(ApproxStrategy::UpperBound)
            .build();
        let sim = ZeroDelaySim::new(&netlist);
        // Every transition above the bound's second level according to the
        // SIMULATOR must also sit above it according to the bound.
        let spectrum = bound.peak_spectrum(2);
        let threshold = spectrum[1].capacitance;
        for (xi, xf) in ExhaustivePairs::new(5) {
            let truth = sim.switching_capacitance(&xi, &xf);
            if truth > threshold {
                assert!(bound.capacitance(&xi, &xf) >= truth);
            }
        }
    }
}
