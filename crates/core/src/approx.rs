//! Approximation strategies: variance/MSE-ranked node collapsing
//! (paper, Section 3).
//!
//! The mechanism (rebuilding an ADD with chosen sub-diagrams replaced by
//! leaves) lives in `charfree-dd`; this module implements the paper's two
//! *strategies*:
//!
//! * **Average** — collapse minimum-*variance* nodes to their sub-function
//!   *average*. Preserves the global average exactly and minimizes the
//!   mean-square error contribution of each collapse; this is the
//!   accuracy-oriented strategy of Example 4.
//! * **UpperBound** — collapse minimum-*MSE* nodes (Eq. 8,
//!   `mse = var + (max − avg)²`) to their sub-function *maximum*. Every
//!   collapse only increases the function pointwise, so the result is a
//!   conservative pattern-dependent upper bound, and the global maximum is
//!   preserved exactly; this is Example 5.

use charfree_dd::hash::FxHashMap;
use charfree_dd::{Add, ChainMeasure, Manager, MeasuredNode, NodeStats};

/// Which leaf value replaces a collapsed sub-ADD, and how candidates are
/// ranked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ApproxStrategy {
    /// Minimum-variance nodes → average leaves (accurate average power).
    #[default]
    Average,
    /// Minimum-MSE nodes → maximum leaves (conservative upper bound).
    UpperBound,
}

impl ApproxStrategy {
    /// The paper's plain local ranking figure (variance or max-replacement
    /// MSE, Eqs. 5–8), used by the unweighted ablation path. The default
    /// path refines this with reach-probability weighting across a measure
    /// mixture — the root-level mean-square error induced by replacing node
    /// `n` with a constant is exactly `p(n) · mse_local(n)`, and without
    /// the `p(n)` factor shallow wide-reach nodes (whose local variance is
    /// often *smaller* than that of deep high-swing nodes) get collapsed
    /// first and the model degenerates toward a constant — see DESIGN.md §5.
    #[inline]
    fn local_score(self, s: &NodeStats) -> f64 {
        match self {
            ApproxStrategy::Average => s.var,
            ApproxStrategy::UpperBound => s.mse_of_max(),
        }
    }

    #[inline]
    fn leaf(self, s: &NodeStats) -> f64 {
        match self {
            ApproxStrategy::Average => s.avg,
            ApproxStrategy::UpperBound => s.max,
        }
    }
}

/// Outcome of one [`approximate_to`] invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApproxOutcome {
    /// Total nodes collapsed.
    pub nodes_collapsed: usize,
    /// Number of collapse/rebuild rounds.
    pub rounds: usize,
}

/// Shrinks `f` below `max_nodes` (size counts terminals, CUDD-style) by
/// node collapsing under `strategy`.
///
/// Per-node statistics are computed in one traversal (Eqs. 5–8) and
/// internal nodes are ranked by the strategy's score ascending — "nodes
/// with minimum variance are chosen for collapsing and node collapsing
/// proceeds (possibly involving nodes with larger variance) until the
/// global ADD is reduced under a target size". Because the size reached by
/// collapsing the `k` lowest-scored nodes is unpredictable (shared
/// sub-diagrams cascade), `k` is found by binary search over trial
/// rebuilds, which collapses **as few nodes as possible** while meeting the
/// bound — no overshoot. In the limit (`max_nodes` very small) the root
/// itself collapses and the model degenerates into the paper's constant
/// estimator.
///
/// # Panics
///
/// Panics if `max_nodes == 0` (a single terminal already has size 1).
pub fn approximate_to(
    m: &mut Manager,
    f: Add,
    max_nodes: usize,
    strategy: ApproxStrategy,
) -> (Add, ApproxOutcome) {
    let mixture = [(ChainMeasure::uniform(m.num_vars()), 1.0)];
    approximate_impl(m, f, max_nodes, strategy, Some(&mixture))
}

/// [`approximate_to`] under an explicit input [`ChainMeasure`].
///
/// Node statistics, reach probabilities and replacement leaf values are all
/// computed under `measure`, so the collapse minimizes the *measure-
/// weighted* root error. For transition-space ADDs a toggle-biased measure
/// ([`ChainMeasure::interleaved_transitions`] with a flip probability
/// < 0.5) keeps the near-diagonal (few-toggle) region — where real
/// workloads live — accurate, instead of sacrificing it as the uniform
/// measure does.
pub fn approximate_to_measured(
    m: &mut Manager,
    f: Add,
    max_nodes: usize,
    strategy: ApproxStrategy,
    measure: &ChainMeasure,
) -> (Add, ApproxOutcome) {
    approximate_impl(m, f, max_nodes, strategy, Some(&[(measure.clone(), 1.0)]))
}

/// [`approximate_to`] under a *mixture* of input measures.
///
/// A model collapsed under one fixed measure is anchored to it: its
/// run-average tracks the golden model only near that operating point and
/// drifts everywhere else in the `(sp, st)` sweep. Minimizing the
/// mixture-expected error instead — leaf values become the
/// reach-weighted mean of the per-measure sub-averages, scores the
/// mixture-expected replacement MSE — balances accuracy across the whole
/// family of operating statistics, which is what the paper's
/// statistics-independence claim requires of an approximated model.
///
/// # Panics
///
/// Panics if `mixture` is empty or its weights are not positive.
pub fn approximate_to_mixture(
    m: &mut Manager,
    f: Add,
    max_nodes: usize,
    strategy: ApproxStrategy,
    mixture: &[(ChainMeasure, f64)],
) -> (Add, ApproxOutcome) {
    assert!(!mixture.is_empty(), "mixture must not be empty");
    assert!(
        mixture.iter().all(|&(_, w)| w > 0.0),
        "mixture weights must be positive"
    );
    approximate_impl(m, f, max_nodes, strategy, Some(mixture))
}

/// [`approximate_to`] with the paper's original *unweighted* node ranking
/// (plain variance / MSE, no reach-probability weighting). Kept for the
/// ablation study of DESIGN.md §5; measurably worse on every benchmark.
pub fn approximate_to_unweighted(
    m: &mut Manager,
    f: Add,
    max_nodes: usize,
    strategy: ApproxStrategy,
) -> (Add, ApproxOutcome) {
    approximate_impl(m, f, max_nodes, strategy, None)
}

/// Per-candidate collapse plan: ranking score and replacement leaf value.
#[derive(Debug, Clone, Copy)]
struct CollapsePlan {
    score: f64,
    leaf: f64,
}

fn approximate_impl(
    m: &mut Manager,
    f: Add,
    max_nodes: usize,
    strategy: ApproxStrategy,
    mixture: Option<&[(ChainMeasure, f64)]>,
) -> (Add, ApproxOutcome) {
    assert!(max_nodes >= 1, "max_nodes must be at least 1");
    let mut f = f;
    let mut outcome = ApproxOutcome {
        nodes_collapsed: 0,
        rounds: 0,
    };
    loop {
        let size = m.size(f.node());
        if size <= max_nodes || f.node().is_terminal() {
            return (f, outcome);
        }
        let plans = collapse_plans(m, f, strategy, mixture);
        let mut candidates = m.topological_nodes(f.node());
        candidates.sort_by(|&a, &b| {
            plans[&a]
                .score
                .partial_cmp(&plans[&b].score)
                .expect("finite scores")
        });

        let collapse_lowest = |m: &mut Manager, k: usize| -> (Add, usize) {
            let mut replacements: FxHashMap<_, f64> = FxHashMap::default();
            for &id in candidates.iter().take(k) {
                replacements.insert(id, plans[&id].leaf);
            }
            (m.collapse(f, &replacements), replacements.len())
        };

        // Binary search the smallest k whose collapse meets the bound.
        // Size is not strictly monotone in k, so verify and fall back to
        // widening linearly if the found k overshoots the predicate.
        let mut lo = 1usize;
        let mut hi = candidates.len();
        let mut best: Option<(Add, usize)> = None;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let (g, collapsed) = collapse_lowest(m, mid);
            outcome.rounds += 1;
            if m.size(g.node()) <= max_nodes {
                best = Some((g, collapsed));
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let (g, collapsed) = match best {
            Some((g, c))
                if {
                    // `hi` may have drifted below the best verified k due to
                    // non-monotonicity; re-verify the final candidate.
                    m.size(g.node()) <= max_nodes
                } =>
            {
                (g, c)
            }
            _ => {
                let (g, c) = collapse_lowest(m, candidates.len());
                outcome.rounds += 1;
                (g, c)
            }
        };
        outcome.nodes_collapsed += collapsed;
        f = g;
        // The trial rebuilds above leave sizeable garbage in the computed
        // tables; drop it so long approximation campaigns stay bounded.
        m.clear_caches();
        // Collapsing every internal node yields a terminal, so progress is
        // guaranteed; loop again in the (rare) non-monotone corner where
        // the chosen k still left the diagram above the bound.
    }
}

/// Computes the per-node collapse plan (score + leaf) under the given
/// measure mixture, or the paper's plain unweighted statistics when
/// `mixture` is `None`.
fn collapse_plans(
    m: &Manager,
    f: Add,
    strategy: ApproxStrategy,
    mixture: Option<&[(ChainMeasure, f64)]>,
) -> FxHashMap<charfree_dd::NodeId, CollapsePlan> {
    match mixture {
        None => {
            let stats = m.add_stats(f);
            stats
                .iter()
                .map(|(id, s)| {
                    (
                        id,
                        CollapsePlan {
                            score: strategy.local_score(&s),
                            leaf: strategy.leaf(&s),
                        },
                    )
                })
                .collect()
        }
        Some(mixture) => {
            let profiles: Vec<(f64, FxHashMap<charfree_dd::NodeId, MeasuredNode>)> = mixture
                .iter()
                .map(|(measure, w)| (*w, m.add_measured_profile(f, measure)))
                .collect();
            let mut plans: FxHashMap<charfree_dd::NodeId, CollapsePlan> = FxHashMap::default();
            // Reference profile for node enumeration and (measure-
            // independent) max values.
            let (_, reference) = &profiles[0];
            for (&id, node0) in reference {
                // Mixture mass and mean.
                let mut mass = 0.0f64;
                let mut mean = 0.0f64;
                for (w, prof) in &profiles {
                    if let Some(p) = prof.get(&id) {
                        mass += w * p.reach;
                        mean += w * p.reach * p.stats.avg;
                    }
                }
                let leaf = match strategy {
                    ApproxStrategy::Average => {
                        if mass > 0.0 {
                            mean / mass
                        } else {
                            node0.stats.avg
                        }
                    }
                    ApproxStrategy::UpperBound => node0.stats.max,
                };
                // Mixture-expected replacement MSE for leaf value `leaf`.
                let mut score = 0.0f64;
                for (w, prof) in &profiles {
                    if let Some(p) = prof.get(&id) {
                        let bias = p.stats.avg - leaf;
                        score += w * p.reach * (p.stats.var + bias * bias);
                    }
                }
                plans.insert(id, CollapsePlan { score, leaf });
            }
            plans
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charfree_dd::Var;

    /// A staircase ADD: value = Σ 2^v over set bits — all 2^n values
    /// distinct, maximally incompressible.
    fn staircase(m: &mut Manager, n: u32) -> Add {
        let mut acc = m.add_zero();
        for v in 0..n {
            let x = m.bdd_var(Var(v));
            let d = m.add_scale(x.as_add(), f64::powi(2.0, v as i32));
            acc = m.add_plus(acc, d);
        }
        acc
    }

    #[test]
    fn already_small_is_untouched() {
        let mut m = Manager::new(4);
        let f = staircase(&mut m, 2);
        let size = m.size(f.node());
        let (g, out) = approximate_to(&mut m, f, size, ApproxStrategy::Average);
        assert_eq!(f, g);
        assert_eq!(out.nodes_collapsed, 0);
    }

    #[test]
    fn shrinks_below_bound() {
        let mut m = Manager::new(8);
        let f = staircase(&mut m, 8);
        assert!(m.size(f.node()) > 20);
        for target in [20, 10, 5, 2] {
            let (g, _) = approximate_to(&mut m, f, target, ApproxStrategy::Average);
            assert!(
                m.size(g.node()) <= target,
                "target {target}, got {}",
                m.size(g.node())
            );
        }
    }

    #[test]
    fn degenerates_to_constant_average() {
        let mut m = Manager::new(6);
        let f = staircase(&mut m, 6);
        let avg = m.add_avg(f);
        let (g, _) = approximate_to(&mut m, f, 1, ApproxStrategy::Average);
        assert!(g.node().is_terminal());
        assert!((m.terminal_value(g.node()) - avg).abs() < 1e-9);
    }

    #[test]
    fn degenerates_to_constant_max() {
        let mut m = Manager::new(6);
        let f = staircase(&mut m, 6);
        let max = m.add_max_value(f);
        let (g, _) = approximate_to(&mut m, f, 1, ApproxStrategy::UpperBound);
        assert!(g.node().is_terminal());
        assert_eq!(m.terminal_value(g.node()), max);
    }

    #[test]
    fn average_strategy_preserves_global_average() {
        let mut m = Manager::new(8);
        let f = staircase(&mut m, 8);
        let avg = m.add_avg(f);
        for target in [40, 20, 10, 4] {
            let (g, _) = approximate_to(&mut m, f, target, ApproxStrategy::Average);
            assert!(
                (m.add_avg(g) - avg).abs() < 1e-9,
                "target {target}: avg drifted"
            );
        }
    }

    #[test]
    fn upper_bound_strategy_is_sound_everywhere() {
        let mut m = Manager::new(6);
        let f = staircase(&mut m, 6);
        let (g, _) = approximate_to(&mut m, f, 8, ApproxStrategy::UpperBound);
        for bits in 0..64u32 {
            let asg: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            assert!(
                m.add_eval(g, &asg) >= m.add_eval(f, &asg) - 1e-12,
                "bits={bits:06b}"
            );
        }
        // And the global max is preserved exactly.
        assert_eq!(m.add_max_value(g), m.add_max_value(f));
    }

    #[test]
    fn tighter_bounds_with_more_nodes() {
        // Average slack of the bound should not increase with budget.
        let mut m = Manager::new(8);
        let f = staircase(&mut m, 8);
        let mut last_slack = f64::INFINITY;
        for target in [2, 8, 32, 128, 1024] {
            let (g, _) = approximate_to(&mut m, f, target, ApproxStrategy::UpperBound);
            let slack = m.add_avg(g) - m.add_avg(f);
            assert!(
                slack <= last_slack + 1e-9,
                "slack must shrink with budget: {slack} vs {last_slack}"
            );
            last_slack = slack;
        }
        assert!(last_slack.abs() < 1e-9, "full budget leaves no slack");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_budget_rejected() {
        let mut m = Manager::new(2);
        let f = staircase(&mut m, 2);
        let _ = approximate_to(&mut m, f, 0, ApproxStrategy::Average);
    }
}
