//! Composition of macro power models into RT-level designs.
//!
//! Section 1.2 of the paper: summing the overall worst-case power of every
//! macro wildly overestimates a design's worst case, because no single
//! input pattern maximizes all macros at once. **Pattern-dependent** upper
//! bounds compose much more tightly: "Given an input pattern, it is
//! possible to compute an upper bound to the power consumption of the
//! entire circuit for that pattern by simply summing the pattern-dependent
//! upper bounds of its components."
//!
//! [`RtlDesign`] models a flat RT-level design: instances of macro power
//! models wired to (possibly shared) slices of a global input bus.

use crate::model::{AddPowerModel, PowerModel};
use charfree_netlist::units::Capacitance;
use std::error::Error;
use std::fmt;

/// Errors building an RTL design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtlError {
    /// The instance's input map references a global input out of range.
    InputOutOfRange {
        /// Offending instance name.
        instance: String,
        /// The out-of-range global index.
        index: usize,
    },
    /// The instance's input map length does not match the model width.
    WidthMismatch {
        /// Offending instance name.
        instance: String,
        /// Model input count.
        expected: usize,
        /// Provided map length.
        got: usize,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::InputOutOfRange { instance, index } => {
                write!(
                    f,
                    "instance `{instance}` maps input to out-of-range bus bit {index}"
                )
            }
            RtlError::WidthMismatch {
                instance,
                expected,
                got,
            } => write!(
                f,
                "instance `{instance}` needs {expected} inputs, map has {got}"
            ),
        }
    }
}

impl Error for RtlError {}

/// One macro instance inside an [`RtlDesign`].
#[derive(Debug)]
pub struct RtlInstance {
    name: String,
    model: AddPowerModel,
    /// `input_map[i]` = global bus bit feeding macro input `i`.
    input_map: Vec<usize>,
}

impl RtlInstance {
    /// Instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The macro's power model.
    pub fn model(&self) -> &AddPowerModel {
        &self.model
    }

    fn local(&self, global: &[bool]) -> Vec<bool> {
        self.input_map.iter().map(|&g| global[g]).collect()
    }
}

/// A flat RT-level design: macro power models over a shared input bus.
///
/// # Examples
///
/// ```
/// use charfree_core::{ModelBuilder, RtlDesign};
/// use charfree_netlist::benchmarks::paper_unit;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut design = RtlDesign::new(4);
/// let unit = paper_unit();
/// design.add_instance("u0", ModelBuilder::new(&unit).build(), vec![0, 1])?;
/// design.add_instance("u1", ModelBuilder::new(&unit).build(), vec![2, 3])?;
/// let c = design.capacitance(&[true, true, true, true], &[false; 4]);
/// assert_eq!(c.femtofarads(), 180.0); // both units: 90 fF each
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct RtlDesign {
    num_inputs: usize,
    instances: Vec<RtlInstance>,
}

impl RtlDesign {
    /// An empty design over a `num_inputs`-bit global input bus.
    pub fn new(num_inputs: usize) -> Self {
        RtlDesign {
            num_inputs,
            instances: Vec::new(),
        }
    }

    /// Global bus width.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Adds a macro instance whose input `i` is driven by global bus bit
    /// `input_map[i]`. Instances may share bus bits.
    ///
    /// # Errors
    ///
    /// [`RtlError::WidthMismatch`] or [`RtlError::InputOutOfRange`].
    pub fn add_instance(
        &mut self,
        name: impl Into<String>,
        model: AddPowerModel,
        input_map: Vec<usize>,
    ) -> Result<(), RtlError> {
        let name = name.into();
        if input_map.len() != model.num_inputs() {
            return Err(RtlError::WidthMismatch {
                instance: name,
                expected: model.num_inputs(),
                got: input_map.len(),
            });
        }
        if let Some(&bad) = input_map.iter().find(|&&g| g >= self.num_inputs) {
            return Err(RtlError::InputOutOfRange {
                instance: name,
                index: bad,
            });
        }
        self.instances.push(RtlInstance {
            name,
            model,
            input_map,
        });
        Ok(())
    }

    /// The instances, in insertion order.
    pub fn instances(&self) -> &[RtlInstance] {
        &self.instances
    }

    /// Design-level estimate for a global bus transition: the sum of every
    /// instance's model estimate. If the instance models are upper bounds,
    /// this is the composed pattern-dependent upper bound of Section 1.2.
    ///
    /// # Panics
    ///
    /// Panics if pattern widths differ from the bus width.
    pub fn capacitance(&self, xi: &[bool], xf: &[bool]) -> Capacitance {
        assert_eq!(xi.len(), self.num_inputs, "bus width mismatch");
        assert_eq!(xf.len(), self.num_inputs, "bus width mismatch");
        self.instances
            .iter()
            .map(|inst| inst.model.capacitance(&inst.local(xi), &inst.local(xf)))
            .sum()
    }

    /// The naive composed worst case: the sum of every instance's overall
    /// maximum, ignoring patterns. Always ≥ any pattern-dependent estimate;
    /// the gap is the paper's Section 1.2 argument.
    pub fn worst_case_sum(&self) -> Capacitance {
        self.instances
            .iter()
            .map(|inst| inst.model.max_capacitance())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::ApproxStrategy;
    use crate::builder::ModelBuilder;
    use charfree_netlist::benchmarks::{decod, paper_unit};
    use charfree_netlist::Library;

    fn unit_model() -> AddPowerModel {
        ModelBuilder::new(&paper_unit()).build()
    }

    #[test]
    fn instances_share_bus_bits() {
        let mut d = RtlDesign::new(2);
        d.add_instance("a", unit_model(), vec![0, 1]).expect("ok");
        d.add_instance("b", unit_model(), vec![1, 0]).expect("ok");
        assert_eq!(d.instances().len(), 2);
        assert_eq!(d.instances()[0].name(), "a");
        // xi=(1,1) -> xf=(0,0): each unit sees its own 11 -> 00: 90 fF.
        let c = d.capacitance(&[true, true], &[false, false]);
        assert_eq!(c.femtofarads(), 180.0);
    }

    #[test]
    fn errors_on_bad_maps() {
        let mut d = RtlDesign::new(2);
        assert!(matches!(
            d.add_instance("w", unit_model(), vec![0]),
            Err(RtlError::WidthMismatch { .. })
        ));
        assert!(matches!(
            d.add_instance("o", unit_model(), vec![0, 5]),
            Err(RtlError::InputOutOfRange { .. })
        ));
        let e = RtlError::InputOutOfRange {
            instance: "o".into(),
            index: 5,
        };
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn pattern_dependent_bound_is_tighter_than_worst_case_sum() {
        // Section 1.2: with several instances, the summed pattern-dependent
        // bound for a *specific* transition sits well below the summed
        // worst cases, yet stays conservative.
        let lib = Library::test_library();
        let netlist = decod(&lib);
        let mut d = RtlDesign::new(10);
        for (k, base) in [0usize, 5].iter().enumerate() {
            let bound = ModelBuilder::new(&netlist)
                .max_nodes(200)
                .strategy(ApproxStrategy::UpperBound)
                .build();
            d.add_instance(format!("dec{k}"), bound, (0..5).map(|i| base + i).collect())
                .expect("ok");
        }
        let worst = d.worst_case_sum();
        // A gentle transition: one address bit toggles on one decoder.
        let mut xi = vec![false; 10];
        let mut xf = vec![false; 10];
        xf[0] = true;
        let bound = d.capacitance(&xi, &xf);
        assert!(bound < worst, "bound {bound} vs worst-case sum {worst}");

        // Conservativeness against the real circuits.
        let sim = charfree_sim::ZeroDelaySim::new(&netlist);
        let exact = sim.switching_capacitance(&xi[..5], &xf[..5]).femtofarads()
            + sim.switching_capacitance(&xi[5..], &xf[5..]).femtofarads();
        assert!(bound.femtofarads() >= exact - 1e-9);
        xi[3] = true; // exercise the other decoder too
        let bound2 = d.capacitance(&xi, &xf);
        assert!(bound2 <= worst);
    }

    #[test]
    fn empty_design_is_zero() {
        let d = RtlDesign::new(3);
        assert_eq!(d.capacitance(&[false; 3], &[true; 3]), Capacitance(0.0));
        assert_eq!(d.worst_case_sum(), Capacitance(0.0));
        assert_eq!(d.num_inputs(), 3);
    }
}
