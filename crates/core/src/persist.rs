//! Power-model persistence — the paper's backannotation story.
//!
//! Once constructed, a model "is used to backannotate [the macro's]
//! functional description" and must be distributable *without* the
//! gate-level netlist (Section 2: a direct representation of `C(xⁱ,xᶠ)`
//! protects third-party IP). [`AddPowerModel::save`] writes the complete
//! model — diagram, input/slot mapping, collapse mixture and analytic
//! means — as a versioned text artifact; [`AddPowerModel::load`] restores
//! a fully functional model (evaluation, symbolic statistics, further
//! [`AddPowerModel::shrink`] passes).

use crate::calibrate::ExactMeans;
use crate::model::{AddPowerModel, BuildReport, VariableOrdering};
use charfree_dd::{Add, ChainMeasure, Manager, VarMeasure};
use std::io::{self, BufRead, Write};
use std::time::Duration;

const MAGIC: &str = "charfree-model v1";

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn unhex(tok: &str) -> io::Result<f64> {
    let bits = u64::from_str_radix(tok, 16).map_err(|_| bad("bad f64 bits"))?;
    let v = f64::from_bits(bits);
    if v.is_nan() {
        return Err(bad("NaN in model file"));
    }
    Ok(v)
}

impl AddPowerModel {
    /// Writes the model to `w` in the versioned `charfree-model v1` text
    /// format. The golden netlist is **not** part of the artifact.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "{MAGIC}")?;
        writeln!(w, "name {}", self.display_name)?;
        writeln!(w, "inputs {}", self.num_inputs)?;
        writeln!(
            w,
            "ordering {}",
            match self.ordering {
                VariableOrdering::Interleaved => "interleaved",
                VariableOrdering::Grouped => "grouped",
            }
        )?;
        let slots: Vec<String> = self.input_slots.iter().map(|s| s.to_string()).collect();
        writeln!(w, "slots {}", slots.join(" "))?;
        writeln!(
            w,
            "report {} {} {} {}",
            self.report.approximation_rounds,
            self.report.nodes_collapsed,
            u8::from(self.report.exact),
            self.report.cpu.as_secs_f64()
        )?;
        writeln!(w, "mixture {}", self.collapse_mixture.len())?;
        for (measure, weight) in &self.collapse_mixture {
            let mut items = Vec::with_capacity(measure.len());
            for v in 0..measure.len() {
                if measure.is_correlated(v as u32) {
                    items.push(format!(
                        "c:{}:{}",
                        hex(measure.prob_one(v, 1)),
                        hex(measure.prob_one(v, 2))
                    ));
                } else {
                    items.push(format!("i:{}", hex(measure.prob_one(v, 0))));
                }
            }
            writeln!(w, "measure {} {}", hex(*weight), items.join(" "))?;
        }
        match &self.exact_means {
            Some(means) => {
                let vals: Vec<String> = means.0.iter().map(|&v| hex(v)).collect();
                writeln!(w, "means {}", vals.join(" "))?;
            }
            None => writeln!(w, "means -")?,
        }
        charfree_dd::io::write_diagram(&self.manager, self.root.node(), w)
    }

    /// Reads a model written by [`AddPowerModel::save`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed or version-mismatched input.
    pub fn load<R: BufRead>(mut r: R) -> io::Result<AddPowerModel> {
        let mut line = String::new();
        let mut next = |r: &mut R| -> io::Result<String> {
            line.clear();
            if r.read_line(&mut line)? == 0 {
                return Err(bad("unexpected end of model file"));
            }
            Ok(line.trim_end().to_owned())
        };

        if next(&mut r)? != MAGIC {
            return Err(bad("not a charfree-model v1 file"));
        }
        let name = next(&mut r)?
            .strip_prefix("name ")
            .ok_or_else(|| bad("missing name"))?
            .to_owned();
        let num_inputs: usize = next(&mut r)?
            .strip_prefix("inputs ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("missing inputs"))?;
        let ordering = match next(&mut r)?.strip_prefix("ordering ") {
            Some("interleaved") => VariableOrdering::Interleaved,
            Some("grouped") => VariableOrdering::Grouped,
            _ => return Err(bad("bad ordering")),
        };
        let slots_line = next(&mut r)?;
        let slots_str = slots_line
            .strip_prefix("slots ")
            .ok_or_else(|| bad("missing slots"))?;
        let input_slots: Vec<usize> = slots_str
            .split_whitespace()
            .map(|t| t.parse().map_err(|_| bad("bad slot")))
            .collect::<io::Result<_>>()?;
        if input_slots.len() != num_inputs {
            return Err(bad("slot count mismatch"));
        }
        {
            let mut seen = vec![false; num_inputs];
            for &s in &input_slots {
                if s >= num_inputs || seen[s] {
                    return Err(bad("slots are not a permutation"));
                }
                seen[s] = true;
            }
        }

        let report_line = next(&mut r)?;
        let mut parts = report_line
            .strip_prefix("report ")
            .ok_or_else(|| bad("missing report"))?
            .split_whitespace();
        let approximation_rounds: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad report"))?;
        let nodes_collapsed: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad report"))?;
        let exact = parts.next() == Some("1");
        let cpu_secs: f64 = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad report"))?;

        let mixture_count: usize = next(&mut r)?
            .strip_prefix("mixture ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("missing mixture"))?;
        let mut collapse_mixture = Vec::with_capacity(mixture_count);
        for _ in 0..mixture_count {
            let mline = next(&mut r)?;
            let rest = mline
                .strip_prefix("measure ")
                .ok_or_else(|| bad("missing measure"))?;
            let mut toks = rest.split_whitespace();
            let weight = unhex(toks.next().ok_or_else(|| bad("missing weight"))?)?;
            let mut items = Vec::new();
            for tok in toks {
                if let Some(p) = tok.strip_prefix("i:") {
                    items.push(VarMeasure::Independent(unhex(p)?));
                } else if let Some(rest) = tok.strip_prefix("c:") {
                    let (a, b) = rest
                        .split_once(':')
                        .ok_or_else(|| bad("bad measure item"))?;
                    items.push(VarMeasure::Correlated {
                        when_prev_false: unhex(a)?,
                        when_prev_true: unhex(b)?,
                    });
                } else {
                    return Err(bad("bad measure item"));
                }
            }
            if items.len() != 2 * num_inputs {
                return Err(bad("measure variable count mismatch"));
            }
            collapse_mixture.push((ChainMeasure::new(items), weight));
        }

        let means_line = next(&mut r)?;
        let means_str = means_line
            .strip_prefix("means ")
            .ok_or_else(|| bad("missing means"))?;
        let exact_means = if means_str == "-" {
            None
        } else {
            let vals: Vec<f64> = means_str
                .split_whitespace()
                .map(unhex)
                .collect::<io::Result<_>>()?;
            if vals.len() != mixture_count {
                return Err(bad("means count mismatch"));
            }
            Some(ExactMeans(vals))
        };

        let mut manager = Manager::new(2 * num_inputs as u32);
        let root = charfree_dd::io::read_diagram(&mut manager, r)?;
        let final_size = manager.size(root);
        Ok(AddPowerModel {
            manager,
            root: Add::from_node(root),
            num_inputs,
            ordering,
            input_slots,
            collapse_mixture,
            exact_means,
            report: BuildReport {
                approximation_rounds,
                nodes_collapsed,
                final_size,
                exact,
                cpu: Duration::from_secs_f64(cpu_secs),
            },
            // Degradation metadata is build-time diagnostics and is not
            // persisted; a reloaded model reports a clean build.
            degradation: None,
            display_name: name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::model::PowerModel;
    use charfree_netlist::{benchmarks, Library};
    use charfree_sim::ExhaustivePairs;

    fn round_trip(model: &AddPowerModel) -> AddPowerModel {
        let mut buf = Vec::new();
        model.save(&mut buf).expect("saves");
        AddPowerModel::load(buf.as_slice()).expect("loads")
    }

    #[test]
    fn exact_model_round_trips_bit_exactly() {
        let library = Library::test_library();
        let netlist = benchmarks::decod(&library);
        let model = ModelBuilder::new(&netlist).build();
        let back = round_trip(&model);
        assert_eq!(back.num_inputs(), model.num_inputs());
        assert_eq!(back.size(), model.size());
        assert_eq!(back.name(), model.name());
        assert!(back.report().exact);
        for (xi, xf) in ExhaustivePairs::new(5) {
            assert_eq!(
                back.capacitance(&xi, &xf).femtofarads().to_bits(),
                model.capacitance(&xi, &xf).femtofarads().to_bits()
            );
        }
    }

    #[test]
    fn approximated_model_round_trips_with_metadata() {
        let library = Library::test_library();
        let netlist = benchmarks::cm85(&library);
        let model = ModelBuilder::new(&netlist).max_nodes(200).build();
        let back = round_trip(&model);
        assert!(!back.report().exact);
        assert_eq!(
            back.report().nodes_collapsed,
            model.report().nodes_collapsed
        );
        assert_eq!(
            back.average_capacitance().femtofarads().to_bits(),
            model.average_capacitance().femtofarads().to_bits()
        );
        // Spot-check evaluation.
        let xi = vec![false; 11];
        let xf = vec![true; 11];
        assert_eq!(back.capacitance(&xi, &xf), model.capacitance(&xi, &xf));
    }

    #[test]
    fn loaded_model_can_shrink_further_with_recalibration() {
        let library = Library::test_library();
        let netlist = benchmarks::cm85(&library);
        let model = ModelBuilder::new(&netlist).max_nodes(500).build();
        let back = round_trip(&model);
        // The exact means survive, so shrink keeps recalibrating.
        let small = back.shrink(50, crate::ApproxStrategy::Average);
        assert!(small.size() <= 50);
        assert!(small.average_capacitance().femtofarads() > 0.0);
    }

    #[test]
    fn rejects_malformed_files() {
        assert!(AddPowerModel::load("garbage".as_bytes()).is_err());
        assert!(AddPowerModel::load("charfree-model v1\n".as_bytes()).is_err());
        let text = "charfree-model v1\nname x\ninputs 2\nordering diagonal\n";
        assert!(AddPowerModel::load(text.as_bytes()).is_err());
        // Bad slot permutation.
        let text = "charfree-model v1\nname x\ninputs 2\nordering interleaved\nslots 0 0\n";
        assert!(AddPowerModel::load(text.as_bytes()).is_err());
    }
}
