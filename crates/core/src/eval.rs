//! The accuracy-evaluation harness behind Fig. 7 and Table 1.
//!
//! Protocol (paper, Section 4): for each input-statistics operating point
//! `(sp, st)`, run concurrent RTL (model) and gate-level (golden)
//! simulations of a 10 000-vector random sequence, and compute the relative
//! error `RE(sp, st)` of the model's estimate. The **average relative
//! error** `ARE` is the mean of `RE` over all runs and "represents the
//! quality of RTL power models in terms of accuracy and robustness".
//!
//! Two protocols exist:
//!
//! * [`Protocol::AveragePower`] — `RE` compares the run-average switched
//!   capacitance (columns 4–6 of Table 1);
//! * [`Protocol::MaximumPower`] — `RE` compares the run-maximum, used to
//!   judge conservative upper bounds (columns 9–10).

use crate::model::PowerModel;
use charfree_sim::{MarkovSource, ZeroDelaySim};

/// Which per-run figure of merit `RE` compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Run-average switched capacitance (average power accuracy).
    AveragePower,
    /// Run-maximum switched capacitance (peak power / upper-bound
    /// accuracy).
    MaximumPower,
}

/// One `(sp, st)` operating point's result.
#[derive(Debug, Clone)]
pub struct RunPoint {
    /// Target signal probability of the run.
    pub sp: f64,
    /// Target transition probability of the run.
    pub st: f64,
    /// Golden-model figure of merit (average or maximum capacitance, fF).
    pub reference: f64,
    /// Per-model estimates (same order as the models passed in).
    pub estimates: Vec<f64>,
    /// Per-model relative errors `|est − ref| / ref`.
    pub relative_errors: Vec<f64>,
}

/// A full sweep over operating points.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Model names, in column order.
    pub model_names: Vec<String>,
    /// Per-point results.
    pub points: Vec<RunPoint>,
    /// Per-model `ARE` (mean of the per-point relative errors).
    pub are: Vec<f64>,
}

impl Evaluation {
    /// `ARE` of the model at `column`, as a percentage (Table 1 units), or
    /// `None` if `column` is not a model column of this evaluation.
    pub fn are_percent(&self, column: usize) -> Option<f64> {
        self.are.get(column).map(|a| a * 100.0)
    }
}

/// Sweeps `models` against the golden model over `grid` operating points.
///
/// Every grid point simulates one `num_vectors`-long Markov sequence (the
/// paper uses 10 000); the same sequence drives the golden model and every
/// RTL model, so the comparison is paired. Runs whose golden reference is
/// zero are skipped (no relative error is defined).
///
/// # Panics
///
/// Panics if `models` is empty, `num_vectors < 2`, or a grid point is
/// Markov-infeasible.
pub fn evaluate(
    models: &[&dyn PowerModel],
    sim: &ZeroDelaySim,
    grid: &[(f64, f64)],
    num_vectors: usize,
    protocol: Protocol,
    seed: u64,
) -> Evaluation {
    assert!(!models.is_empty(), "no models to evaluate");
    assert!(num_vectors >= 2, "need at least two vectors per run");
    let n = sim.num_inputs();
    let mut points = Vec::with_capacity(grid.len());
    let mut are = vec![0.0f64; models.len()];
    for (run, &(sp, st)) in grid.iter().enumerate() {
        let mut source =
            MarkovSource::new(n, sp, st, seed.wrapping_add(run as u64)).expect("feasible grid");
        let patterns = source.sequence(num_vectors);
        let golden = sim.switching_trace(&patterns);

        // Golden figure of merit.
        let reference = match protocol {
            Protocol::AveragePower => {
                golden.iter().map(|c| c.femtofarads()).sum::<f64>() / golden.len() as f64
            }
            Protocol::MaximumPower => golden
                .iter()
                .map(|c| c.femtofarads())
                .fold(f64::NEG_INFINITY, f64::max),
        };
        if reference == 0.0 {
            continue;
        }

        // Model estimates over the same transitions, via the batch entry
        // point (compiled-kernel models override it with a bulk path).
        let mut estimates = Vec::with_capacity(models.len());
        for model in models {
            let trace = model.capacitance_trace(&patterns);
            debug_assert_eq!(trace.len(), patterns.len() - 1);
            let mut sum = 0.0f64;
            let mut max = f64::NEG_INFINITY;
            for &c in &trace {
                sum += c;
                max = max.max(c);
            }
            estimates.push(match protocol {
                Protocol::AveragePower => sum / trace.len() as f64,
                Protocol::MaximumPower => max,
            });
        }
        let relative_errors: Vec<f64> = estimates
            .iter()
            .map(|&e| (e - reference).abs() / reference)
            .collect();
        for (a, &re) in are.iter_mut().zip(&relative_errors) {
            *a += re;
        }
        points.push(RunPoint {
            sp,
            st,
            reference,
            estimates,
            relative_errors,
        });
    }
    let runs = points.len().max(1) as f64;
    for a in &mut are {
        *a /= runs;
    }
    Evaluation {
        model_names: models.iter().map(|m| m.name().to_owned()).collect(),
        points,
        are,
    }
}

/// The Fig. 7a sweep: `RE(st)` at fixed `sp = 0.5` for
/// `st ∈ {0.05, 0.10, …, 0.95}`.
pub fn fig7a_grid() -> Vec<(f64, f64)> {
    (1..=19).map(|k| (0.5, k as f64 * 0.05)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{ConstantModel, LinearModel, TrainingSet};
    use crate::builder::ModelBuilder;
    use charfree_netlist::benchmarks;
    use charfree_netlist::Library;
    use charfree_sim::statistics_grid;

    #[test]
    fn exact_add_model_has_zero_are() {
        let lib = Library::test_library();
        let netlist = benchmarks::decod(&lib);
        let sim = ZeroDelaySim::new(&netlist);
        let model = ModelBuilder::new(&netlist).build();
        let eval = evaluate(
            &[&model],
            &sim,
            &statistics_grid(),
            500,
            Protocol::AveragePower,
            1,
        );
        assert!(eval.are[0] < 1e-12, "exact model, ARE={}", eval.are[0]);
        assert_eq!(eval.model_names, vec!["ADD".to_owned()]);
        assert!(!eval.points.is_empty());
    }

    #[test]
    fn out_of_sample_degradation_orders_models() {
        // The paper's headline: ADD << Lin << Con on ARE.
        let lib = Library::test_library();
        let netlist = benchmarks::cm85(&lib);
        let sim = ZeroDelaySim::new(&netlist);
        let training = TrainingSet::sample(&sim, 4000, 11);
        let con = ConstantModel::fit(&training);
        let lin = LinearModel::fit(&training);
        let add = ModelBuilder::new(&netlist).max_nodes(500).build();
        let eval = evaluate(
            &[&con, &lin, &add],
            &sim,
            &statistics_grid(),
            2000,
            Protocol::AveragePower,
            2,
        );
        let (con_are, lin_are, add_are) = (eval.are[0], eval.are[1], eval.are[2]);
        assert!(
            add_are < lin_are && lin_are < con_are,
            "expected ADD < Lin < Con, got {add_are:.3} {lin_are:.3} {con_are:.3}"
        );
        assert!(add_are < 0.15, "ADD should be accurate, got {add_are}");
    }

    #[test]
    fn characterized_models_are_good_in_sample_only() {
        let lib = Library::test_library();
        let netlist = benchmarks::cm85(&lib);
        let sim = ZeroDelaySim::new(&netlist);
        let training = TrainingSet::sample(&sim, 6000, 21);
        let lin = LinearModel::fit(&training);
        let in_sample = evaluate(
            &[&lin],
            &sim,
            &[(0.5, 0.5)],
            4000,
            Protocol::AveragePower,
            3,
        );
        let out_sample = evaluate(
            &[&lin],
            &sim,
            &[(0.5, 0.1)],
            4000,
            Protocol::AveragePower,
            3,
        );
        assert!(
            in_sample.are[0] < out_sample.are[0],
            "in-sample {} must beat out-of-sample {}",
            in_sample.are[0],
            out_sample.are[0]
        );
    }

    #[test]
    fn maximum_protocol_evaluates_bounds() {
        use crate::approx::ApproxStrategy;
        let lib = Library::test_library();
        let netlist = benchmarks::decod(&lib);
        let sim = ZeroDelaySim::new(&netlist);
        let bound = ModelBuilder::new(&netlist)
            .max_nodes(50)
            .strategy(ApproxStrategy::UpperBound)
            .build();
        let con_max = ConstantModel::from_capacitance(bound.max_capacitance(), "Con");
        let eval = evaluate(
            &[&con_max, &bound],
            &sim,
            &statistics_grid(),
            1000,
            Protocol::MaximumPower,
            4,
        );
        // The pattern-dependent bound must be no worse than the constant
        // worst case, and both must over- (never under-) estimate.
        assert!(eval.are[1] <= eval.are[0] + 1e-12);
        for p in &eval.points {
            assert!(p.estimates[0] >= p.reference - 1e-9);
            assert!(p.estimates[1] >= p.reference - 1e-9);
        }
    }

    #[test]
    fn fig7a_grid_shape() {
        let g = fig7a_grid();
        assert_eq!(g.len(), 19);
        assert!(g.iter().all(|&(sp, _)| sp == 0.5));
        assert!((g[0].1 - 0.05).abs() < 1e-12);
        assert!((g[18].1 - 0.95).abs() < 1e-12);
    }

    #[test]
    fn are_percent_scales() {
        let lib = Library::test_library();
        let netlist = benchmarks::decod(&lib);
        let sim = ZeroDelaySim::new(&netlist);
        let training = TrainingSet::sample(&sim, 1000, 5);
        let con = ConstantModel::fit(&training);
        let eval = evaluate(&[&con], &sim, &[(0.5, 0.5)], 500, Protocol::AveragePower, 6);
        let pct = eval.are_percent(0).expect("column 0 exists");
        assert!((pct - eval.are[0] * 100.0).abs() < 1e-12);
        assert!(eval.are_percent(7).is_none(), "out-of-range column is None");
    }
}
