//! The look-up-table baseline of Gupta & Najm (the paper's reference [5]).
//!
//! `Lut` is the strongest *characterized* competitor the paper discusses:
//! a table of constant estimators pre-characterized under different
//! input-activity conditions. This implementation buckets transitions by
//! their input Hamming activity (number of toggling inputs) and, within an
//! activity bucket, by the signal weight of the destination pattern —
//! a 2-D table in the spirit of [5]'s (input density, output density)
//! binning that works at the pattern level.
//!
//! Like `Con` and `Lin` it is simulation-characterized, so it inherits
//! their out-of-sample fragility: buckets that the training statistics
//! rarely visit carry unreliable constants (they fall back to marginal or
//! global means). It is included to make the comparison set of Section 4
//! complete and to show that even a richer characterized model does not
//! reach the analytical model's robustness.

use crate::baselines::TrainingSet;
use crate::model::PowerModel;
use charfree_netlist::units::Capacitance;

/// A two-dimensional look-up-table power model characterized from
/// simulation (the paper's reference \[5\] family).
///
/// # Examples
///
/// ```
/// use charfree_core::{LutModel, PowerModel, TrainingSet};
/// use charfree_netlist::benchmarks::paper_unit;
/// use charfree_sim::ZeroDelaySim;
///
/// let sim = ZeroDelaySim::new(&paper_unit());
/// let training = TrainingSet::sample(&sim, 2000, 7);
/// let lut = LutModel::fit(&training, 4);
/// let c = lut.capacitance(&[true, true], &[false, false]);
/// assert!(c.femtofarads() >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct LutModel {
    num_inputs: usize,
    /// Signal-weight buckets per activity class.
    weight_buckets: usize,
    /// `table[toggles][weight_bucket]` = (sum, count).
    table: Vec<Vec<(f64, u32)>>,
    /// Per-activity marginal means (fallback for empty cells).
    activity_marginal: Vec<(f64, u32)>,
    /// Global mean (fallback of last resort).
    global_mean: f64,
    display_name: String,
}

impl LutModel {
    /// Characterizes the table on `training`, with `weight_buckets`
    /// signal-weight bins per activity class.
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty or `weight_buckets == 0`.
    pub fn fit(training: &TrainingSet, weight_buckets: usize) -> Self {
        assert!(!training.is_empty(), "empty training set");
        assert!(weight_buckets >= 1, "need at least one weight bucket");
        let num_inputs = training.patterns[0].len();
        let mut table = vec![vec![(0.0f64, 0u32); weight_buckets]; num_inputs + 1];
        let mut activity_marginal = vec![(0.0f64, 0u32); num_inputs + 1];
        let mut total = 0.0f64;
        for (t, c) in training.switched.iter().enumerate() {
            let (a, w) = Self::classify(
                &training.patterns[t],
                &training.patterns[t + 1],
                num_inputs,
                weight_buckets,
            );
            let cell = &mut table[a][w];
            cell.0 += c.femtofarads();
            cell.1 += 1;
            activity_marginal[a].0 += c.femtofarads();
            activity_marginal[a].1 += 1;
            total += c.femtofarads();
        }
        LutModel {
            num_inputs,
            weight_buckets,
            table,
            activity_marginal,
            global_mean: total / training.len() as f64,
            display_name: "LUT".to_owned(),
        }
    }

    fn classify(
        xi: &[bool],
        xf: &[bool],
        num_inputs: usize,
        weight_buckets: usize,
    ) -> (usize, usize) {
        let toggles = xi.iter().zip(xf).filter(|(a, b)| a != b).count();
        let weight = xf.iter().filter(|&&b| b).count();
        let bucket = (weight * weight_buckets / (num_inputs + 1)).min(weight_buckets - 1);
        (toggles, bucket)
    }

    /// Number of table cells that received at least one training sample.
    pub fn populated_cells(&self) -> usize {
        self.table
            .iter()
            .flatten()
            .filter(|(_, count)| *count > 0)
            .count()
    }

    /// Total number of table cells.
    pub fn num_cells(&self) -> usize {
        (self.num_inputs + 1) * self.weight_buckets
    }
}

impl PowerModel for LutModel {
    fn capacitance(&self, xi: &[bool], xf: &[bool]) -> Capacitance {
        assert_eq!(xi.len(), self.num_inputs, "pattern width mismatch");
        let (a, w) = Self::classify(xi, xf, self.num_inputs, self.weight_buckets);
        let (sum, count) = self.table[a][w];
        if count > 0 {
            return Capacitance(sum / f64::from(count));
        }
        let (msum, mcount) = self.activity_marginal[a];
        if mcount > 0 {
            return Capacitance(msum / f64::from(mcount));
        }
        Capacitance(self.global_mean)
    }

    fn name(&self) -> &str {
        &self.display_name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{ConstantModel, LinearModel};
    use crate::eval::{evaluate, Protocol};
    use charfree_netlist::{benchmarks, Library};
    use charfree_sim::{statistics_grid, ZeroDelaySim};

    #[test]
    fn zero_toggle_bucket_learns_zero() {
        // Transitions with no toggles always switch nothing; the LUT's
        // activity-0 row must learn exactly that.
        let library = Library::test_library();
        let netlist = benchmarks::decod(&library);
        let sim = ZeroDelaySim::new(&netlist);
        let training = TrainingSet::sample_with_statistics(&sim, 4000, 0.5, 0.2, 3);
        let lut = LutModel::fit(&training, 3);
        let xi = [true, false, true, false, true];
        assert_eq!(lut.capacitance(&xi, &xi).femtofarads(), 0.0);
    }

    #[test]
    fn lut_beats_con_in_sample_and_tracks_activity() {
        let library = Library::test_library();
        let netlist = benchmarks::cm85(&library);
        let sim = ZeroDelaySim::new(&netlist);
        let training = TrainingSet::sample(&sim, 8000, 4);
        let con = ConstantModel::fit(&training);
        let lut = LutModel::fit(&training, 4);
        let rss = |model: &dyn PowerModel| -> f64 {
            training
                .switched
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let p = model
                        .capacitance(&training.patterns[i], &training.patterns[i + 1])
                        .femtofarads();
                    (p - c.femtofarads()).powi(2)
                })
                .sum()
        };
        assert!(rss(&lut) < rss(&con), "LUT must fit better in-sample");
        assert!(lut.populated_cells() > 4);
        assert!(lut.populated_cells() <= lut.num_cells());
    }

    #[test]
    fn lut_is_more_robust_than_con_but_not_analytical() {
        // Shape check for the extended comparison: the LUT generalizes
        // better than Con (its activity binning extrapolates), yet the
        // analytical ADD model still dominates.
        let library = Library::test_library();
        let netlist = benchmarks::cm85(&library);
        let sim = ZeroDelaySim::new(&netlist);
        let training = TrainingSet::sample(&sim, 8000, 4);
        let con = ConstantModel::fit(&training);
        let lin = LinearModel::fit(&training);
        let lut = LutModel::fit(&training, 4);
        // An exact analytical model: the comparison must not hinge on how
        // much a particular approximation budget happens to cost under a
        // particular sampling stream.
        let add = crate::builder::ModelBuilder::new(&netlist).build();
        let eval = evaluate(
            &[&con, &lin, &lut, &add],
            &sim,
            &statistics_grid(),
            2000,
            Protocol::AveragePower,
            9,
        );
        let (con_are, _lin_are, lut_are, add_are) =
            (eval.are[0], eval.are[1], eval.are[2], eval.are[3]);
        assert!(lut_are < con_are, "LUT generalizes better than Con");
        assert!(add_are < lut_are, "the analytical model still wins");
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_rejected() {
        let t = TrainingSet {
            patterns: vec![],
            switched: vec![],
        };
        let _ = LutModel::fit(&t, 4);
    }
}
