//! Minimal dense linear algebra: least-squares via normal equations.
//!
//! The `Lin` baseline of the paper is a linear regression with `n + 1`
//! coefficients — small enough that forming `XᵀX` and solving by Gaussian
//! elimination with partial pivoting is both simple and numerically
//! adequate (a tiny Tikhonov ridge guards against rank deficiency, e.g.
//! when a training sequence never toggles some input).

/// Solves `min ‖X·a − y‖²` for `a`, where `rows` are the rows of `X`.
///
/// # Panics
///
/// Panics if `rows` is empty, rows have inconsistent lengths, or
/// `y.len() != rows.len()`.
pub fn least_squares(rows: &[Vec<f64>], y: &[f64]) -> Vec<f64> {
    assert!(!rows.is_empty(), "no training rows");
    assert_eq!(rows.len(), y.len(), "row/target count mismatch");
    let k = rows[0].len();
    // Normal equations: (XᵀX + εI) a = Xᵀy.
    let mut ata = vec![vec![0.0f64; k]; k];
    let mut aty = vec![0.0f64; k];
    for (row, &target) in rows.iter().zip(y) {
        assert_eq!(row.len(), k, "inconsistent row length");
        for i in 0..k {
            aty[i] += row[i] * target;
            for j in i..k {
                ata[i][j] += row[i] * row[j];
            }
        }
    }
    for i in 1..k {
        let (upper, rest) = ata.split_at_mut(i);
        for (j, upper_row) in upper.iter().enumerate() {
            rest[0][j] = upper_row[i];
        }
    }
    let ridge = 1e-9 * (1.0 + ata.iter().enumerate().map(|(i, r)| r[i]).sum::<f64>() / k as f64);
    for (i, row) in ata.iter_mut().enumerate() {
        row[i] += ridge;
    }
    solve(ata, aty)
}

/// Solves the square system `M·x = b` with partial pivoting.
///
/// # Panics
///
/// Panics if the (ridge-regularized) system is singular to working
/// precision.
fn solve(mut m: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let k = b.len();
    for col in 0..k {
        // Pivot.
        let pivot = (col..k)
            .max_by(|&i, &j| {
                m[i][col]
                    .abs()
                    .partial_cmp(&m[j][col].abs())
                    .expect("finite")
            })
            .expect("non-empty");
        m.swap(col, pivot);
        b.swap(col, pivot);
        let diag = m[col][col];
        assert!(diag.abs() > 1e-300, "singular system");
        let b_col = b[col];
        let (head, tail) = m.split_at_mut(col + 1);
        let pivot_row = &head[col];
        for (row, b_row) in tail.iter_mut().zip(b.iter_mut().skip(col + 1)) {
            let factor = row[col] / diag;
            if factor == 0.0 {
                continue;
            }
            for (value, &p) in row.iter_mut().zip(pivot_row.iter()).skip(col) {
                *value -= factor * p;
            }
            *b_row -= factor * b_col;
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; k];
    for col in (0..k).rev() {
        let mut acc = b[col];
        for c in col + 1..k {
            acc -= m[col][c] * x[c];
        }
        x[col] = acc / m[col][col];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relationship() {
        // y = 3 + 2·x1 − 5·x2 on a spanning set of points.
        let rows: Vec<Vec<f64>> = (0..8)
            .map(|b| vec![1.0, f64::from(b & 1), f64::from(b >> 1 & 1)])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 + 2.0 * r[1] - 5.0 * r[2]).collect();
        let a = least_squares(&rows, &y);
        assert!((a[0] - 3.0).abs() < 1e-6);
        assert!((a[1] - 2.0).abs() < 1e-6);
        assert!((a[2] + 5.0).abs() < 1e-6);
    }

    #[test]
    fn overdetermined_minimizes_residual() {
        // Noisy y; check the fit beats the constant fit.
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![1.0, (i % 7) as f64]).collect();
        let y: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| 1.0 + 4.0 * r[1] + if i % 2 == 0 { 0.25 } else { -0.25 })
            .collect();
        let a = least_squares(&rows, &y);
        let rss: f64 = rows
            .iter()
            .zip(&y)
            .map(|(r, &t)| {
                let p = a[0] + a[1] * r[1];
                (p - t) * (p - t)
            })
            .sum();
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let tss: f64 = y.iter().map(|&t| (t - mean) * (t - mean)).sum();
        assert!(rss < tss * 0.01, "fit explains the variance");
    }

    #[test]
    fn rank_deficiency_is_regularized() {
        // Column 2 never varies -> singular without ridge.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0, i as f64, 0.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[1]).collect();
        let a = least_squares(&rows, &y);
        assert!((a[1] - 2.0).abs() < 1e-3);
        assert!(a[2].abs() < 1.0, "dead coefficient stays bounded");
    }

    #[test]
    #[should_panic(expected = "no training rows")]
    fn empty_input_panics() {
        let _ = least_squares(&[], &[]);
    }
}
