//! Build failures and the graceful-degradation report.
//!
//! [`ModelBuilder::try_build`](crate::ModelBuilder::try_build) runs the
//! symbolic construction under a resource [`Budget`](charfree_dd::Budget).
//! When a limit trips, the builder does not panic or abort: it walks a
//! three-rung *degradation ladder* and keeps going with a coarser model:
//!
//! 1. **Shed partial sums** ([`DegradationRung::ShedPartialSums`]) —
//!    collapse the pending partial-sum ADDs with the configured
//!    approximation strategy, garbage-collect, and retry the failed gate.
//! 2. **Reorder variables** ([`DegradationRung::ReorderVariables`]) —
//!    run a pair-window reordering search on the largest live partial
//!    sum, permute every live diagram consistently, and retry.
//! 3. **Constant fallback** ([`DegradationRung::ConstantFallback`]) —
//!    stop symbolic construction and fold every remaining gate in as a
//!    constant equal to its load capacitance. A gate can switch at most
//!    its own load per cycle, so the result stays a valid, conservative
//!    model.
//!
//! Everything the ladder had to give up is recorded in a
//! [`DegradationReport`] attached to the returned model; strict-mode
//! builds return [`BuildError::BudgetExceeded`] at the first trip
//! instead.

use charfree_dd::{DdError, Resource};
use charfree_netlist::NetlistError;
use std::error::Error;
use std::fmt;

/// Why [`ModelBuilder::try_build`](crate::ModelBuilder::try_build)
/// failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum BuildError {
    /// The netlist failed validation (cycle, undriven signal, …).
    InvalidNetlist(NetlistError),
    /// A resource budget was exhausted and the builder runs in strict
    /// mode (no degradation allowed).
    BudgetExceeded {
        /// Which resource ran out.
        resource: Resource,
        /// The configured limit for that resource.
        limit: u64,
        /// The observed value that tripped the limit.
        observed: u64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::InvalidNetlist(e) => write!(f, "invalid netlist: {e}"),
            BuildError::BudgetExceeded {
                resource,
                limit,
                observed,
            } => write!(
                f,
                "build budget exceeded: {resource} at {observed} (limit {limit})"
            ),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::InvalidNetlist(e) => Some(e),
            BuildError::BudgetExceeded { .. } => None,
        }
    }
}

impl From<DdError> for BuildError {
    fn from(e: DdError) -> Self {
        match e {
            DdError::BudgetExceeded {
                resource,
                limit,
                observed,
            } => BuildError::BudgetExceeded {
                resource,
                limit,
                observed,
            },
            // `DdError` is non-exhaustive; future variants map to a
            // generic budget report rather than a panic.
            _ => BuildError::BudgetExceeded {
                resource: Resource::ApplySteps,
                limit: 0,
                observed: 0,
            },
        }
    }
}

/// One rung of the degradation ladder, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradationRung {
    /// Pending partial-sum ADDs were collapsed mid-construction.
    ShedPartialSums,
    /// The diagram variable order was re-searched and every live diagram
    /// permuted.
    ReorderVariables,
    /// Remaining gates were folded in as constant load contributions
    /// (conservative upper bound); symbolic construction stopped.
    ConstantFallback,
}

impl DegradationRung {
    /// The ladder's transition function: which rung remediates the next
    /// budget trip. Extracted from the builder's gate loop so the
    /// escalation policy is unit-testable on its own:
    ///
    /// * a *terminal* trip (wall clock, apply steps, cancellation — a
    ///   retry would trip again immediately) jumps straight to
    ///   [`DegradationRung::ConstantFallback`];
    /// * the first trip on a gate sheds partial sums;
    /// * the second trip escalates to a variable reorder when one is
    ///   still available (`reorder_possible`), otherwise falls back to
    ///   constants;
    /// * a gate that has already been retried three times falls back to
    ///   constants unconditionally.
    pub fn select(terminal: bool, gate_retries: usize, reorder_possible: bool) -> DegradationRung {
        if terminal || gate_retries >= 3 {
            DegradationRung::ConstantFallback
        } else if gate_retries == 1 {
            DegradationRung::ShedPartialSums
        } else if reorder_possible {
            DegradationRung::ReorderVariables
        } else {
            DegradationRung::ConstantFallback
        }
    }
}

impl fmt::Display for DegradationRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DegradationRung::ShedPartialSums => "shed-partial-sums",
            DegradationRung::ReorderVariables => "reorder-variables",
            DegradationRung::ConstantFallback => "constant-fallback",
        })
    }
}

/// What a budget-limited build had to give up (attached to the model via
/// [`AddPowerModel::degradation`](crate::AddPowerModel::degradation)).
#[derive(Debug, Clone, Default)]
pub struct DegradationReport {
    /// Every rung firing, in order (repeats kept — two sheds on
    /// different gates appear twice).
    pub rungs: Vec<DegradationRung>,
    /// Per-gate retry counts, as `(output signal name, retries)`, for
    /// gates that needed at least one remediation.
    pub gate_retries: Vec<(String, usize)>,
    /// The resource whose exhaustion fired the ladder first.
    pub first_trip: Option<Resource>,
    /// Number of gates folded in as constants by the last rung.
    pub gates_folded: usize,
    /// Total constant capacitance (fF) the last rung added.
    pub constant_tail_ff: f64,
    /// Final model size in nodes.
    pub final_nodes: usize,
    /// The configured live-node budget the build ran under, if any.
    pub node_budget: Option<u64>,
}

impl DegradationReport {
    /// Whether `rung` fired at least once.
    pub fn fired(&self, rung: DegradationRung) -> bool {
        self.rungs.contains(&rung)
    }

    /// Total number of rung firings.
    pub fn firings(&self) -> usize {
        self.rungs.len()
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut fired: Vec<String> = Vec::new();
        for rung in [
            DegradationRung::ShedPartialSums,
            DegradationRung::ReorderVariables,
            DegradationRung::ConstantFallback,
        ] {
            let count = self.rungs.iter().filter(|&&r| r == rung).count();
            if count > 0 {
                fired.push(format!("{rung} x{count}"));
            }
        }
        write!(
            f,
            "degraded build (first trip: {}): rungs [{}]",
            self.first_trip
                .map_or_else(|| "unknown".to_owned(), |r| r.to_string()),
            fired.join(", ")
        )?;
        if self.gates_folded > 0 {
            write!(
                f,
                "; {} gates folded to a {:.1} fF constant tail",
                self.gates_folded, self.constant_tail_ff
            )?;
        }
        write!(f, "; final size {} nodes", self.final_nodes)?;
        if let Some(nb) = self.node_budget {
            write!(f, " (budget {nb})")?;
        }
        for (name, retries) in &self.gate_retries {
            write!(f, "; gate {name}: {retries} retries")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_display_names_rungs_and_budget() {
        let report = DegradationReport {
            rungs: vec![
                DegradationRung::ShedPartialSums,
                DegradationRung::ShedPartialSums,
                DegradationRung::ConstantFallback,
            ],
            gate_retries: vec![("g7".to_owned(), 2)],
            first_trip: Some(Resource::LiveNodes),
            gates_folded: 3,
            constant_tail_ff: 120.0,
            final_nodes: 42,
            node_budget: Some(500),
        };
        let text = report.to_string();
        assert!(text.contains("shed-partial-sums x2"), "{text}");
        assert!(text.contains("constant-fallback x1"), "{text}");
        assert!(text.contains("live nodes"), "{text}");
        assert!(text.contains("120.0 fF"), "{text}");
        assert!(text.contains("budget 500"), "{text}");
        assert!(text.contains("g7: 2 retries"), "{text}");
        assert!(report.fired(DegradationRung::ShedPartialSums));
        assert!(!report.fired(DegradationRung::ReorderVariables));
        assert_eq!(report.firings(), 3);
    }

    /// Replays a trip sequence through [`DegradationRung::select`] the
    /// way the builder's gate loop does: each entry is one budget trip on
    /// a given gate, the per-gate retry count increments before the rung
    /// is chosen, and reorders consume the shared two-reorder allowance.
    fn replay(trips: &[(usize, bool)]) -> DegradationReport {
        let mut retries = std::collections::HashMap::new();
        let mut reorderings = 0usize;
        let mut report = DegradationReport::default();
        for &(gate, terminal) in trips {
            let r = retries.entry(gate).or_insert(0usize);
            *r += 1;
            let rung = DegradationRung::select(terminal, *r, reorderings < 2);
            if rung == DegradationRung::ReorderVariables {
                reorderings += 1;
            }
            report.rungs.push(rung);
            if rung == DegradationRung::ConstantFallback {
                break;
            }
        }
        report
    }

    #[test]
    fn ladder_escalates_shed_reorder_constant_on_one_gate() {
        // Three consecutive trips on the same gate walk the full ladder
        // in order; the report records the exact sequence.
        let report = replay(&[(0, false), (0, false), (0, false)]);
        assert_eq!(
            report.rungs,
            vec![
                DegradationRung::ShedPartialSums,
                DegradationRung::ReorderVariables,
                DegradationRung::ConstantFallback,
            ]
        );
        assert_eq!(report.firings(), 3);
    }

    #[test]
    fn ladder_restarts_at_shed_for_each_new_gate() {
        // Trips on distinct gates each get their own first-rung shed; the
        // escalation state is per gate, not global.
        let report = replay(&[(0, false), (1, false), (2, false)]);
        assert_eq!(report.rungs, vec![DegradationRung::ShedPartialSums; 3]);
        assert!(!report.fired(DegradationRung::ReorderVariables));
        assert!(!report.fired(DegradationRung::ConstantFallback));
    }

    #[test]
    fn ladder_skips_reorder_when_none_is_available() {
        // Grouped orderings (or an exhausted reorder allowance) cannot
        // reorder, so the second trip on a gate falls back to constants.
        assert_eq!(
            DegradationRung::select(false, 2, false),
            DegradationRung::ConstantFallback
        );
        // With the allowance spent on two earlier gates, a third gate's
        // second trip ends the build.
        let report = replay(&[
            (0, false),
            (0, false), // reorder #1
            (1, false),
            (1, false), // reorder #2
            (2, false),
            (2, false), // allowance exhausted -> constants
        ]);
        assert_eq!(
            report.rungs,
            vec![
                DegradationRung::ShedPartialSums,
                DegradationRung::ReorderVariables,
                DegradationRung::ShedPartialSums,
                DegradationRung::ReorderVariables,
                DegradationRung::ShedPartialSums,
                DegradationRung::ConstantFallback,
            ]
        );
    }

    #[test]
    fn terminal_trips_jump_straight_to_constant_fallback() {
        // Wall-clock/step/cancellation exhaustion is terminal even on a
        // gate's very first trip.
        for retries in 1..=4 {
            assert_eq!(
                DegradationRung::select(true, retries, true),
                DegradationRung::ConstantFallback
            );
        }
        let report = replay(&[(0, true)]);
        assert_eq!(report.rungs, vec![DegradationRung::ConstantFallback]);
    }

    #[test]
    fn fourth_trip_on_a_gate_always_ends_symbolic_construction() {
        assert_eq!(
            DegradationRung::select(false, 4, true),
            DegradationRung::ConstantFallback
        );
        let report = replay(&[(0, false), (0, false), (0, false), (0, false)]);
        // The third trip already fell back (ladder exhausted), so the
        // replay stops there — constant fallback is absorbing.
        assert_eq!(
            report.rungs.last(),
            Some(&DegradationRung::ConstantFallback)
        );
    }

    #[test]
    fn build_error_display_and_conversion() {
        let dd = DdError::BudgetExceeded {
            resource: Resource::WallClock,
            limit: 100,
            observed: 150,
        };
        let err: BuildError = dd.into();
        let text = err.to_string();
        assert!(text.contains("wall clock"), "{text}");
        assert!(text.contains("150"), "{text}");
        assert!(err.source().is_none());
    }
}
