//! Content-addressed on-disk artifact store.
//!
//! Artifacts (`.cfm` models, `.cfk` kernels) are keyed by a 128-bit
//! content hash of everything that determines them: the canonical netlist
//! text, the library fingerprint and the build-option fingerprint. A
//! second run on identical inputs warm-loads the artifact instead of
//! rebuilding; every load re-validates the file (the persistence formats
//! are self-checking), and any mismatch — truncation, corruption, a
//! format-version bump — degrades to a rebuild, never a panic.
//!
//! Writes are atomic and durable: the artifact is staged to a temp file,
//! fsync'd, renamed into place, and the directory is fsync'd so the
//! rename itself survives power loss. A write-ahead journal
//! (`store.journal`, append-only `begin`/`commit` records per file)
//! brackets every publish; [`ArtifactStore::recover`] replays it on
//! startup, removes stray temp files, quarantines any half-written entry
//! under `quarantine/`, and reports what it found as a typed
//! [`RecoveryReport`]. Because the store is content-addressed and every
//! artifact is regenerable from source, recovery never has to repair
//! bytes — it only has to get torn files out from under live keys.
//!
//! All filesystem operations route through a [`FaultIo`] handle
//! (default: passthrough), so the conform `chaos` campaign can inject
//! short writes, transient errors, and torn renames deterministically.

use crate::faultio::{FaultIo, RealIo};
use crate::telemetry::ArtifactKind;
use charfree_core::AddPowerModel;
use charfree_engine::Kernel;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Name of the write-ahead journal file inside the store directory.
pub const JOURNAL_FILE: &str = "store.journal";

/// Name of the quarantine subdirectory torn entries are moved into.
pub const QUARANTINE_DIR: &str = "quarantine";

/// How many times a transient ([`io::ErrorKind::Interrupted`] /
/// [`io::ErrorKind::WouldBlock`]) failure is retried before giving up.
const TRANSIENT_RETRIES: usize = 16;

fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock
    )
}

/// Runs `op`, retrying EINTR/EAGAIN-style transients a bounded number of
/// times. Non-transient errors propagate immediately.
fn retry_transient<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut last: Option<io::Error> = None;
    for _ in 0..TRANSIENT_RETRIES {
        match op() {
            Err(e) if is_transient(&e) => last = Some(e),
            other => return other,
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("transient retry budget exhausted")))
}

/// A 128-bit content hash identifying one artifact: two independent
/// 64-bit FNV-1a streams over the same length-prefixed sections (the
/// second stream starts from a decorrelated offset basis). Not
/// cryptographic — the store is a cache, not a trust boundary — but far
/// past accidental-collision range for any realistic corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactKey {
    lo: u64,
    hi: u64,
}

impl ArtifactKey {
    /// Derives the key for an ordered list of input sections. Sections
    /// are length-prefixed before hashing so boundaries cannot alias
    /// (`["ab", "c"]` and `["a", "bc"]` hash differently).
    pub fn derive(sections: &[&str]) -> ArtifactKey {
        let mut lo = FNV_OFFSET;
        let mut hi = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;
        for section in sections {
            let prefix = (section.len() as u64).to_le_bytes();
            for bytes in [&prefix[..], section.as_bytes()] {
                for &b in bytes {
                    lo = (lo ^ u64::from(b)).wrapping_mul(FNV_PRIME);
                    hi = (hi ^ u64::from(b)).wrapping_mul(FNV_PRIME);
                }
            }
        }
        ArtifactKey { lo, hi }
    }

    /// The 32-hex-digit rendering (the cache file stem).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Result of a cache probe.
#[derive(Debug)]
pub enum CacheLookup<T> {
    /// Artifact present and valid.
    Hit(T),
    /// No artifact stored under the key.
    Miss,
    /// An artifact file exists under the key but failed validation; the
    /// caller should rebuild (the next store overwrites the bad entry).
    Poisoned(String),
}

/// One entry moved aside by [`ArtifactStore::recover`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedEntry {
    /// The artifact file name (`<hex>.<cfm|cfk>`).
    pub file: String,
    /// Why validation rejected it.
    pub reason: String,
}

/// What a startup recovery pass found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Parseable journal records replayed.
    pub journal_records: usize,
    /// The journal ended mid-record (crash during an append); the torn
    /// tail was discarded.
    pub torn_journal_tail: bool,
    /// Stray `*.tmp*` staging files removed.
    pub tmp_files_removed: usize,
    /// `begin` records whose artifact never reached disk (writer died
    /// before publishing; nothing to clean).
    pub aborted_writes: usize,
    /// `begin` records whose artifact is present and valid but whose
    /// `commit` never landed; recovery wrote the missing commit.
    pub healed_commits: usize,
    /// Artifact files that validated clean.
    pub valid_entries: usize,
    /// Artifact files that failed validation and were moved to
    /// `quarantine/` (half-written entries, external corruption).
    pub quarantined: Vec<QuarantinedEntry>,
}

impl RecoveryReport {
    /// True when the pass found nothing to repair.
    pub fn is_clean(&self) -> bool {
        !self.torn_journal_tail
            && self.tmp_files_removed == 0
            && self.aborted_writes == 0
            && self.healed_commits == 0
            && self.quarantined.is_empty()
    }

    /// One-line human summary for server startup logs.
    pub fn summary(&self) -> String {
        format!(
            "{} valid, {} quarantined, {} healed, {} aborted, {} tmp removed{}",
            self.valid_entries,
            self.quarantined.len(),
            self.healed_commits,
            self.aborted_writes,
            self.tmp_files_removed,
            if self.torn_journal_tail {
                ", torn journal tail"
            } else {
                ""
            }
        )
    }
}

/// The on-disk store: one flat directory of `<hash>.cfm` / `<hash>.cfk`
/// files plus the `store.journal` write-ahead log (created lazily on
/// first write).
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    dir: PathBuf,
    io: Arc<dyn FaultIo>,
}

impl ArtifactStore {
    /// A store rooted at `dir`. The directory is created on first write,
    /// not here — read-only probes of a never-written store are cheap
    /// misses.
    pub fn new(dir: impl Into<PathBuf>) -> ArtifactStore {
        ArtifactStore {
            dir: dir.into(),
            io: Arc::new(RealIo),
        }
    }

    /// Replaces the I/O layer (fault injection for tests and the conform
    /// `chaos` campaign).
    pub fn with_io(mut self, io: Arc<dyn FaultIo>) -> ArtifactStore {
        self.io = io;
        self
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path an artifact lives at.
    pub fn path(&self, key: ArtifactKey, kind: ArtifactKind) -> PathBuf {
        self.dir.join(format!("{}.{}", key.hex(), kind.extension()))
    }

    /// The write-ahead journal's path.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join(JOURNAL_FILE)
    }

    /// The quarantine directory's path.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join(QUARANTINE_DIR)
    }

    /// Probes for a stored model; validation failures surface as
    /// [`CacheLookup::Poisoned`], never an error.
    pub fn load_model(&self, key: ArtifactKey) -> CacheLookup<AddPowerModel> {
        self.load(key, ArtifactKind::Model, |bytes| {
            AddPowerModel::load(bytes).map_err(|e| e.to_string())
        })
    }

    /// Probes for a stored kernel (re-validated on load by the `.cfk`
    /// format itself).
    pub fn load_kernel(&self, key: ArtifactKey) -> CacheLookup<Kernel> {
        self.load(key, ArtifactKind::Kernel, |bytes| {
            Kernel::load(bytes).map_err(|e| e.to_string())
        })
    }

    fn load<T>(
        &self,
        key: ArtifactKey,
        kind: ArtifactKind,
        parse: impl FnOnce(&[u8]) -> Result<T, String>,
    ) -> CacheLookup<T> {
        let path = self.path(key, kind);
        let bytes = match retry_transient(|| self.io.read_file(&path)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return CacheLookup::Miss,
            Err(e) => return CacheLookup::Poisoned(format!("{}: {e}", path.display())),
        };
        match parse(&bytes) {
            Ok(artifact) => CacheLookup::Hit(artifact),
            Err(e) => CacheLookup::Poisoned(format!("{}: {e}", path.display())),
        }
    }

    /// Stores a model under `key`, atomically and durably.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (callers treat a failed store as
    /// "run stays uncached", not as a run failure).
    pub fn store_model(&self, key: ArtifactKey, model: &AddPowerModel) -> io::Result<()> {
        let mut buf = Vec::new();
        model.save(&mut buf)?;
        self.store_bytes(key, ArtifactKind::Model, &buf)
    }

    /// Stores a kernel under `key`, atomically and durably.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn store_kernel(&self, key: ArtifactKey, kernel: &Kernel) -> io::Result<()> {
        let mut buf = Vec::new();
        kernel.save(&mut buf)?;
        self.store_bytes(key, ArtifactKind::Kernel, &buf)
    }

    /// Appends one journal record and fsyncs the journal so the record
    /// is durable before the operation it describes proceeds.
    fn journal_append(&self, record: &str) -> io::Result<()> {
        let journal = self.journal_path();
        retry_transient(|| self.io.append_file(&journal, record.as_bytes()))?;
        retry_transient(|| self.io.sync_file(&journal))
    }

    fn store_bytes(&self, key: ArtifactKey, kind: ArtifactKind, bytes: &[u8]) -> io::Result<()> {
        retry_transient(|| self.io.create_dir_all(&self.dir))?;
        let path = self.path(key, kind);
        let name = format!("{}.{}", key.hex(), kind.extension());
        // Write-ahead: intent first, so a crash anywhere below leaves a
        // pending `begin` that recovery knows to check.
        self.journal_append(&format!("begin {name}\n"))?;
        // Concurrent writers under the same key are expected (two
        // processes — or two threads of one server — building the same
        // netlist). Each writer stages to a name unique per process AND
        // per call: a pid alone is not enough, because two threads share
        // it and would interleave writes into one tmp file.
        static STORE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = STORE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            "{}.{}.tmp{}-{}",
            key.hex(),
            kind.extension(),
            std::process::id(),
            seq
        ));
        // Stage, then fsync the staged bytes BEFORE the rename publishes
        // them: otherwise a power cut can leave a live key pointing at a
        // file whose data never reached the platter.
        if let Err(e) = retry_transient(|| self.io.write_file(&tmp, bytes)) {
            let _ = self.io.remove_file(&tmp);
            return Err(e);
        }
        if let Err(e) = retry_transient(|| self.io.sync_file(&tmp)) {
            let _ = self.io.remove_file(&tmp);
            return Err(e);
        }
        match retry_transient(|| self.io.rename(&tmp, &path)) {
            Ok(()) => {}
            // The rename loser is tolerated: if another writer already
            // published the key, content-addressing guarantees its bytes
            // encode the same artifact, so this writer's outcome is
            // equivalent to having won the race. (A torn rename that
            // left garbage at the destination is indistinguishable here;
            // validate-on-load and the recovery pass both catch it.)
            Err(_) if path.exists() => {
                let _ = self.io.remove_file(&tmp);
            }
            Err(e) => {
                let _ = self.io.remove_file(&tmp);
                return Err(e);
            }
        }
        // fsync the directory so the rename itself is durable, then
        // journal the commit.
        retry_transient(|| self.io.sync_dir(&self.dir))?;
        self.journal_append(&format!("commit {name}\n"))
    }

    /// Startup recovery pass: replays the journal, removes stray temp
    /// files, validates every artifact on disk, moves torn or corrupt
    /// entries to `quarantine/`, heals missing commits, and rewrites a
    /// compacted journal reflecting the surviving entries.
    ///
    /// Safe to run on a live directory only at startup (it assumes no
    /// concurrent writers). Idempotent: a second pass on the result is
    /// clean.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; validation failures are not
    /// errors (they become quarantine entries).
    pub fn recover(&self) -> io::Result<RecoveryReport> {
        let mut report = RecoveryReport::default();
        if !self.dir.exists() {
            return Ok(report);
        }

        // Replay the journal into a last-state map. A torn tail (crash
        // mid-append) or malformed line is tolerated and discarded.
        let mut state: BTreeMap<String, bool> = BTreeMap::new(); // name -> committed
        let journal = self.journal_path();
        if journal.exists() {
            let bytes = retry_transient(|| self.io.read_file(&journal))?;
            let text = String::from_utf8_lossy(&bytes);
            if !bytes.is_empty() && !bytes.ends_with(b"\n") {
                report.torn_journal_tail = true;
            }
            let mut lines: Vec<&str> = text.split('\n').collect();
            if !report.torn_journal_tail {
                // Complete final newline: drop the empty trailing split.
                lines.pop();
            } else {
                // Torn tail: drop the partial record.
                lines.pop();
            }
            for line in lines {
                match line.split_once(' ') {
                    Some(("begin", name)) if !name.is_empty() => {
                        state.entry(name.to_owned()).or_insert(false);
                        report.journal_records += 1;
                    }
                    Some(("commit", name)) if !name.is_empty() => {
                        state.insert(name.to_owned(), true);
                        report.journal_records += 1;
                    }
                    _ => report.torn_journal_tail = true,
                }
            }
        }

        // Scan the directory: drop temp files, validate every artifact.
        let mut valid: Vec<String> = Vec::new();
        let mut quarantined_names: Vec<String> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name == JOURNAL_FILE || name == QUARANTINE_DIR {
                continue;
            }
            let path = entry.path();
            if !path.is_file() {
                continue;
            }
            if name.contains(".tmp") {
                retry_transient(|| self.io.remove_file(&path))?;
                report.tmp_files_removed += 1;
                continue;
            }
            let verdict = match path.extension().and_then(|e| e.to_str()) {
                Some(ext) if ext == ArtifactKind::Model.extension() => {
                    let bytes = retry_transient(|| self.io.read_file(&path))?;
                    AddPowerModel::load(bytes.as_slice())
                        .map(|_| ())
                        .map_err(|e| e.to_string())
                }
                Some(ext) if ext == ArtifactKind::Kernel.extension() => {
                    let bytes = retry_transient(|| self.io.read_file(&path))?;
                    Kernel::load(bytes.as_slice())
                        .map(|_| ())
                        .map_err(|e| e.to_string())
                }
                _ => Err("unknown artifact extension".to_owned()),
            };
            match verdict {
                Ok(()) => {
                    report.valid_entries += 1;
                    valid.push(name);
                }
                Err(reason) => {
                    self.quarantine(&path, &name)?;
                    quarantined_names.push(name.clone());
                    report
                        .quarantined
                        .push(QuarantinedEntry { file: name, reason });
                }
            }
        }

        // Resolve pending `begin`s against what the scan found.
        for (name, committed) in &state {
            if *committed {
                continue;
            }
            if quarantined_names.iter().any(|q| q == name) {
                // Already handled: the half-written entry is in
                // quarantine.
            } else if valid.iter().any(|v| v == name) {
                // Writer crashed between rename and commit; the artifact
                // is whole, so the commit heals below via the compacted
                // journal.
                report.healed_commits += 1;
            } else {
                report.aborted_writes += 1;
            }
        }

        // Compact the journal to exactly the surviving entries.
        valid.sort();
        let mut compacted = String::new();
        for name in &valid {
            compacted.push_str("commit ");
            compacted.push_str(name);
            compacted.push('\n');
        }
        retry_transient(|| self.io.write_file(&journal, compacted.as_bytes()))?;
        retry_transient(|| self.io.sync_file(&journal))?;
        retry_transient(|| self.io.sync_dir(&self.dir))?;
        Ok(report)
    }

    /// Moves a failed-validation artifact into `quarantine/`, preserving
    /// its bytes for inspection. Falls back to deletion if the move
    /// fails — the entry must not stay under a live key either way.
    fn quarantine(&self, path: &Path, name: &str) -> io::Result<()> {
        let qdir = self.quarantine_dir();
        retry_transient(|| self.io.create_dir_all(&qdir))?;
        let dest = qdir.join(name);
        if retry_transient(|| self.io.rename(path, &dest)).is_err() {
            retry_transient(|| self.io.remove_file(path))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultio::{FaultConfig, FaultPlan};
    use charfree_core::ModelBuilder;
    use charfree_netlist::{benchmarks, Library};
    use std::time::Duration;

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("charfree-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn test_model() -> AddPowerModel {
        let lib = Library::test_library();
        let netlist = benchmarks::decod(&lib);
        ModelBuilder::new(&netlist).max_nodes(100).build()
    }

    #[test]
    fn keys_separate_sections_and_content() {
        let a = ArtifactKey::derive(&["ab", "c"]);
        let b = ArtifactKey::derive(&["a", "bc"]);
        let c = ArtifactKey::derive(&["ab", "c"]);
        assert_ne!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.hex().len(), 32);
        assert_ne!(ArtifactKey::derive(&[]), ArtifactKey::derive(&[""]));
    }

    #[test]
    fn model_and_kernel_round_trip_through_the_store() {
        let dir = fresh_dir("roundtrip");
        let store = ArtifactStore::new(&dir);
        let key = ArtifactKey::derive(&["roundtrip"]);
        assert!(matches!(store.load_model(key), CacheLookup::Miss));

        let model = test_model();
        store.store_model(key, &model).expect("store model");
        let CacheLookup::Hit(back) = store.load_model(key) else {
            panic!("stored model must load");
        };
        assert_eq!(back.size(), model.size());

        let kernel = Kernel::compile(&model);
        store.store_kernel(key, &kernel).expect("store kernel");
        let CacheLookup::Hit(kback) = store.load_kernel(key) else {
            panic!("stored kernel must load");
        };
        assert_eq!(kback.num_instrs(), kernel.num_instrs());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn racing_writers_under_one_key_leave_one_valid_artifact() {
        let dir = fresh_dir("race");
        let store = ArtifactStore::new(&dir);
        let key = ArtifactKey::derive(&["race"]);
        let model = test_model();
        let kernel = Kernel::compile(&model);

        // Two builders finish "at the same time" and publish the same
        // content under the same key, repeatedly. Both must succeed, both
        // must then read back a valid kernel, and the store must end up
        // with exactly one artifact file per kind, the journal, and no
        // tmp leftovers.
        const ROUNDS: usize = 50;
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    for _ in 0..ROUNDS {
                        store.store_kernel(key, &kernel).expect("store kernel");
                        store.store_model(key, &model).expect("store model");
                        let CacheLookup::Hit(k) = store.load_kernel(key) else {
                            panic!("concurrently stored kernel must load");
                        };
                        assert_eq!(k.num_instrs(), kernel.num_instrs());
                    }
                });
            }
        });

        let CacheLookup::Hit(back) = store.load_model(key) else {
            panic!("model must survive the race");
        };
        assert_eq!(back.size(), model.size());
        let files: Vec<String> = fs::read_dir(&dir)
            .expect("store dir")
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        let artifacts: Vec<&String> = files.iter().filter(|f| *f != JOURNAL_FILE).collect();
        assert_eq!(artifacts.len(), 2, "one .cfm + one .cfk, got {files:?}");
        assert!(
            files.iter().all(|f| !f.contains("tmp")),
            "no tmp leftovers: {files:?}"
        );
        // And the interleaved journal replays clean.
        let report = store.recover().expect("recover");
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.valid_entries, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_version_bumped_entries_are_poisoned_not_fatal() {
        let dir = fresh_dir("poison");
        let store = ArtifactStore::new(&dir);
        let key = ArtifactKey::derive(&["poison"]);
        let model = test_model();
        store.store_model(key, &model).expect("store model");
        store
            .store_kernel(key, &Kernel::compile(&model))
            .expect("store kernel");

        // Truncation.
        let mpath = store.path(key, ArtifactKind::Model);
        let full = fs::read(&mpath).expect("read model artifact");
        fs::write(&mpath, &full[..full.len() / 2]).expect("truncate");
        assert!(matches!(store.load_model(key), CacheLookup::Poisoned(_)));

        // Version bump in the header.
        let kpath = store.path(key, ArtifactKind::Kernel);
        let text = fs::read_to_string(&kpath).expect("read kernel artifact");
        fs::write(&kpath, text.replacen("v1", "v9", 1)).expect("rewrite");
        assert!(matches!(store.load_kernel(key), CacheLookup::Poisoned(_)));

        // Garbage bytes.
        fs::write(&mpath, b"not an artifact at all").expect("corrupt");
        assert!(matches!(store.load_model(key), CacheLookup::Poisoned(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_store_recovers_clean_and_journal_records_commits() {
        let dir = fresh_dir("cleanrec");
        let store = ArtifactStore::new(&dir);
        let key = ArtifactKey::derive(&["cleanrec"]);
        let model = test_model();
        store.store_model(key, &model).expect("store model");
        store
            .store_kernel(key, &Kernel::compile(&model))
            .expect("store kernel");

        let journal = fs::read_to_string(store.journal_path()).expect("journal");
        assert_eq!(journal.matches("begin ").count(), 2, "{journal}");
        assert_eq!(journal.matches("commit ").count(), 2, "{journal}");

        let report = store.recover().expect("recover");
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.valid_entries, 2);
        assert_eq!(report.journal_records, 4);
        // Compacted: commits only.
        let journal = fs::read_to_string(store.journal_path()).expect("journal");
        assert_eq!(journal.matches("begin ").count(), 0);
        assert_eq!(journal.matches("commit ").count(), 2);
        // Idempotent.
        let again = store.recover().expect("recover again");
        assert!(again.is_clean(), "{again:?}");
        assert_eq!(again.valid_entries, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_quarantines_torn_entries_and_rebuild_heals_byte_identically() {
        let dir = fresh_dir("tornrec");
        let clean_dir = fresh_dir("tornrec-clean");
        let store = ArtifactStore::new(&dir);
        let clean = ArtifactStore::new(&clean_dir);
        let key = ArtifactKey::derive(&["tornrec"]);
        let model = test_model();
        let kernel = Kernel::compile(&model);
        for s in [&store, &clean] {
            s.store_model(key, &model).expect("store model");
            s.store_kernel(key, &kernel).expect("store kernel");
        }

        // Simulate kill -9 mid-write: torn kernel bytes under the live
        // key, with a dangling `begin` in the journal.
        let kpath = store.path(key, ArtifactKind::Kernel);
        let kname = format!("{}.{}", key.hex(), ArtifactKind::Kernel.extension());
        let full = fs::read(&kpath).expect("read kernel artifact");
        fs::write(&kpath, &full[..full.len() / 2]).expect("tear");
        let mut journal = fs::read_to_string(store.journal_path()).expect("journal");
        journal.push_str(&format!("begin {kname}\n"));
        fs::write(store.journal_path(), journal).expect("append begin");

        let report = store.recover().expect("recover");
        assert_eq!(report.quarantined.len(), 1, "{report:?}");
        assert_eq!(report.quarantined[0].file, kname);
        assert_eq!(report.valid_entries, 1); // the model survived
        assert!(store.quarantine_dir().join(&kname).exists());
        // The torn entry is out from under the live key...
        assert!(matches!(store.load_kernel(key), CacheLookup::Miss));
        // ...and a rebuild heals it byte-identically to a clean write.
        store.store_kernel(key, &kernel).expect("re-store kernel");
        let healed = fs::read(&kpath).expect("healed bytes");
        let reference = fs::read(clean.path(key, ArtifactKind::Kernel)).expect("clean bytes");
        assert_eq!(healed, reference, "healed entry must be byte-identical");
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&clean_dir);
    }

    #[test]
    fn recovery_tolerates_torn_journal_tail_and_removes_tmp_files() {
        let dir = fresh_dir("tailrec");
        let store = ArtifactStore::new(&dir);
        let key = ArtifactKey::derive(&["tailrec"]);
        let model = test_model();
        store.store_model(key, &model).expect("store model");

        // A crash mid-append leaves a partial record with no newline,
        // and a crash mid-stage leaves a tmp file.
        let mut journal = fs::read_to_string(store.journal_path()).expect("journal");
        journal.push_str("begin 0123456789abcd"); // no newline
        fs::write(store.journal_path(), journal).expect("tear tail");
        fs::write(dir.join("deadbeef.cfk.tmp42-7"), b"partial").expect("tmp");
        // And a begin for an artifact that never reached disk at all.
        // (Appending after the torn tail would corrupt it further; the
        // torn record IS the aborted write here.)

        let report = store.recover().expect("recover");
        assert!(report.torn_journal_tail, "{report:?}");
        assert_eq!(report.tmp_files_removed, 1);
        assert_eq!(report.valid_entries, 1);
        assert!(report.quarantined.is_empty());
        assert!(matches!(store.load_model(key), CacheLookup::Hit(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_counts_aborted_writes() {
        let dir = fresh_dir("abortrec");
        let store = ArtifactStore::new(&dir);
        let key = ArtifactKey::derive(&["abortrec"]);
        store.store_model(key, &test_model()).expect("store model");
        let mut journal = fs::read_to_string(store.journal_path()).expect("journal");
        journal.push_str("begin ffffffffffffffffffffffffffffffff.cfk\n");
        fs::write(store.journal_path(), journal).expect("append");
        let report = store.recover().expect("recover");
        assert_eq!(report.aborted_writes, 1, "{report:?}");
        assert!(report.quarantined.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_under_fault_ladder_never_serves_wrong_bytes() {
        let dir = fresh_dir("chaos");
        let model = test_model();
        let kernel = Kernel::compile(&model);
        let key = ArtifactKey::derive(&["chaos"]);

        for seed in 0..20u64 {
            let plan = Arc::new(FaultPlan::new(
                seed,
                FaultConfig {
                    short_write_every: 3,
                    transient_every: 2,
                    torn_rename_every: 4,
                    stream_every: 0,
                    stall: Duration::ZERO,
                },
            ));
            let store = ArtifactStore::new(&dir).with_io(plan);
            // Stores may fail (typed io errors); loads must only ever
            // produce the true kernel, a miss, or a poisoned verdict —
            // never a silently wrong artifact.
            let _ = store.store_kernel(key, &kernel);
            match store.load_kernel(key) {
                CacheLookup::Hit(k) => assert_eq!(k.num_instrs(), kernel.num_instrs()),
                CacheLookup::Miss | CacheLookup::Poisoned(_) => {}
            }
        }

        // After the ladder, a real-io recovery pass + store leaves a
        // fully healthy cache.
        let store = ArtifactStore::new(&dir);
        store.recover().expect("recover");
        store.store_kernel(key, &kernel).expect("store kernel");
        let CacheLookup::Hit(k) = store.load_kernel(key) else {
            panic!("healed store must hit");
        };
        assert_eq!(k.num_instrs(), kernel.num_instrs());
        let report = store.recover().expect("recover");
        assert!(report.is_clean(), "{report:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
