//! Content-addressed on-disk artifact store.
//!
//! Artifacts (`.cfm` models, `.cfk` kernels) are keyed by a 128-bit
//! content hash of everything that determines them: the canonical netlist
//! text, the library fingerprint and the build-option fingerprint. A
//! second run on identical inputs warm-loads the artifact instead of
//! rebuilding; every load re-validates the file (the persistence formats
//! are self-checking), and any mismatch — truncation, corruption, a
//! format-version bump — degrades to a rebuild, never a panic.
//!
//! Writes are atomic (temp file + rename in the same directory), so a
//! crashed or concurrent writer can leave stray `*.tmp*` files but never
//! a half-written artifact under a live key.

use crate::telemetry::ArtifactKind;
use charfree_core::AddPowerModel;
use charfree_engine::Kernel;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 128-bit content hash identifying one artifact: two independent
/// 64-bit FNV-1a streams over the same length-prefixed sections (the
/// second stream starts from a decorrelated offset basis). Not
/// cryptographic — the store is a cache, not a trust boundary — but far
/// past accidental-collision range for any realistic corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactKey {
    lo: u64,
    hi: u64,
}

impl ArtifactKey {
    /// Derives the key for an ordered list of input sections. Sections
    /// are length-prefixed before hashing so boundaries cannot alias
    /// (`["ab", "c"]` and `["a", "bc"]` hash differently).
    pub fn derive(sections: &[&str]) -> ArtifactKey {
        let mut lo = FNV_OFFSET;
        let mut hi = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;
        for section in sections {
            let prefix = (section.len() as u64).to_le_bytes();
            for bytes in [&prefix[..], section.as_bytes()] {
                for &b in bytes {
                    lo = (lo ^ u64::from(b)).wrapping_mul(FNV_PRIME);
                    hi = (hi ^ u64::from(b)).wrapping_mul(FNV_PRIME);
                }
            }
        }
        ArtifactKey { lo, hi }
    }

    /// The 32-hex-digit rendering (the cache file stem).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Result of a cache probe.
#[derive(Debug)]
pub enum CacheLookup<T> {
    /// Artifact present and valid.
    Hit(T),
    /// No artifact stored under the key.
    Miss,
    /// An artifact file exists under the key but failed validation; the
    /// caller should rebuild (the next store overwrites the bad entry).
    Poisoned(String),
}

/// The on-disk store: one flat directory of `<hash>.cfm` / `<hash>.cfk`
/// files (created lazily on first write).
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    dir: PathBuf,
}

impl ArtifactStore {
    /// A store rooted at `dir`. The directory is created on first write,
    /// not here — read-only probes of a never-written store are cheap
    /// misses.
    pub fn new(dir: impl Into<PathBuf>) -> ArtifactStore {
        ArtifactStore { dir: dir.into() }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path an artifact lives at.
    pub fn path(&self, key: ArtifactKey, kind: ArtifactKind) -> PathBuf {
        self.dir.join(format!("{}.{}", key.hex(), kind.extension()))
    }

    /// Probes for a stored model; validation failures surface as
    /// [`CacheLookup::Poisoned`], never an error.
    pub fn load_model(&self, key: ArtifactKey) -> CacheLookup<AddPowerModel> {
        self.load(key, ArtifactKind::Model, |bytes| {
            AddPowerModel::load(bytes).map_err(|e| e.to_string())
        })
    }

    /// Probes for a stored kernel (re-validated on load by the `.cfk`
    /// format itself).
    pub fn load_kernel(&self, key: ArtifactKey) -> CacheLookup<Kernel> {
        self.load(key, ArtifactKind::Kernel, |bytes| {
            Kernel::load(bytes).map_err(|e| e.to_string())
        })
    }

    fn load<T>(
        &self,
        key: ArtifactKey,
        kind: ArtifactKind,
        parse: impl FnOnce(&[u8]) -> Result<T, String>,
    ) -> CacheLookup<T> {
        let path = self.path(key, kind);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return CacheLookup::Miss,
            Err(e) => return CacheLookup::Poisoned(format!("{}: {e}", path.display())),
        };
        match parse(&bytes) {
            Ok(artifact) => CacheLookup::Hit(artifact),
            Err(e) => CacheLookup::Poisoned(format!("{}: {e}", path.display())),
        }
    }

    /// Stores a model under `key`, atomically.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (callers treat a failed store as
    /// "run stays uncached", not as a run failure).
    pub fn store_model(&self, key: ArtifactKey, model: &AddPowerModel) -> io::Result<()> {
        let mut buf = Vec::new();
        model.save(&mut buf)?;
        self.store_bytes(key, ArtifactKind::Model, &buf)
    }

    /// Stores a kernel under `key`, atomically.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn store_kernel(&self, key: ArtifactKey, kernel: &Kernel) -> io::Result<()> {
        let mut buf = Vec::new();
        kernel.save(&mut buf)?;
        self.store_bytes(key, ArtifactKind::Kernel, &buf)
    }

    fn store_bytes(&self, key: ArtifactKey, kind: ArtifactKind, bytes: &[u8]) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let path = self.path(key, kind);
        // Concurrent writers under the same key are expected (two
        // processes — or two threads of one server — building the same
        // netlist). Each writer stages to a name unique per process AND
        // per call: a pid alone is not enough, because two threads share
        // it and would interleave writes into one tmp file.
        static STORE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = STORE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            "{}.{}.tmp{}-{}",
            key.hex(),
            kind.extension(),
            std::process::id(),
            seq
        ));
        fs::write(&tmp, bytes)?;
        match fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            // The rename loser is tolerated: if another writer already
            // published the key, content-addressing guarantees its bytes
            // encode the same artifact, so this writer's outcome is
            // equivalent to having won the race.
            Err(_) if path.exists() => {
                let _ = fs::remove_file(&tmp);
                Ok(())
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charfree_core::ModelBuilder;
    use charfree_netlist::{benchmarks, Library};

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("charfree-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn keys_separate_sections_and_content() {
        let a = ArtifactKey::derive(&["ab", "c"]);
        let b = ArtifactKey::derive(&["a", "bc"]);
        let c = ArtifactKey::derive(&["ab", "c"]);
        assert_ne!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.hex().len(), 32);
        assert_ne!(ArtifactKey::derive(&[]), ArtifactKey::derive(&[""]));
    }

    #[test]
    fn model_and_kernel_round_trip_through_the_store() {
        let dir = fresh_dir("roundtrip");
        let store = ArtifactStore::new(&dir);
        let key = ArtifactKey::derive(&["roundtrip"]);
        assert!(matches!(store.load_model(key), CacheLookup::Miss));

        let lib = Library::test_library();
        let netlist = benchmarks::decod(&lib);
        let model = ModelBuilder::new(&netlist).max_nodes(100).build();
        store.store_model(key, &model).expect("store model");
        let CacheLookup::Hit(back) = store.load_model(key) else {
            panic!("stored model must load");
        };
        assert_eq!(back.size(), model.size());

        let kernel = Kernel::compile(&model);
        store.store_kernel(key, &kernel).expect("store kernel");
        let CacheLookup::Hit(kback) = store.load_kernel(key) else {
            panic!("stored kernel must load");
        };
        assert_eq!(kback.num_instrs(), kernel.num_instrs());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn racing_writers_under_one_key_leave_one_valid_artifact() {
        let dir = fresh_dir("race");
        let store = ArtifactStore::new(&dir);
        let key = ArtifactKey::derive(&["race"]);
        let lib = Library::test_library();
        let netlist = benchmarks::decod(&lib);
        let model = ModelBuilder::new(&netlist).max_nodes(100).build();
        let kernel = Kernel::compile(&model);

        // Two builders finish "at the same time" and publish the same
        // content under the same key, repeatedly. Both must succeed, both
        // must then read back a valid kernel, and the store must end up
        // with exactly one artifact file and no tmp leftovers.
        const ROUNDS: usize = 50;
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    for _ in 0..ROUNDS {
                        store.store_kernel(key, &kernel).expect("store kernel");
                        store.store_model(key, &model).expect("store model");
                        let CacheLookup::Hit(k) = store.load_kernel(key) else {
                            panic!("concurrently stored kernel must load");
                        };
                        assert_eq!(k.num_instrs(), kernel.num_instrs());
                    }
                });
            }
        });

        let CacheLookup::Hit(back) = store.load_model(key) else {
            panic!("model must survive the race");
        };
        assert_eq!(back.size(), model.size());
        let files: Vec<String> = fs::read_dir(&dir)
            .expect("store dir")
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(files.len(), 2, "one .cfm + one .cfk, got {files:?}");
        assert!(
            files.iter().all(|f| !f.contains("tmp")),
            "no tmp leftovers: {files:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_version_bumped_entries_are_poisoned_not_fatal() {
        let dir = fresh_dir("poison");
        let store = ArtifactStore::new(&dir);
        let key = ArtifactKey::derive(&["poison"]);
        let lib = Library::test_library();
        let netlist = benchmarks::decod(&lib);
        let model = ModelBuilder::new(&netlist).max_nodes(64).build();
        store.store_model(key, &model).expect("store model");
        store
            .store_kernel(key, &Kernel::compile(&model))
            .expect("store kernel");

        // Truncation.
        let mpath = store.path(key, ArtifactKind::Model);
        let full = fs::read(&mpath).expect("read model artifact");
        fs::write(&mpath, &full[..full.len() / 2]).expect("truncate");
        assert!(matches!(store.load_model(key), CacheLookup::Poisoned(_)));

        // Version bump in the header.
        let kpath = store.path(key, ArtifactKind::Kernel);
        let text = fs::read_to_string(&kpath).expect("read kernel artifact");
        fs::write(&kpath, text.replacen("v1", "v9", 1)).expect("rewrite");
        assert!(matches!(store.load_kernel(key), CacheLookup::Poisoned(_)));

        // Garbage bytes.
        fs::write(&mpath, b"not an artifact at all").expect("corrupt");
        assert!(matches!(store.load_model(key), CacheLookup::Poisoned(_)));
        let _ = fs::remove_dir_all(&dir);
    }
}
