//! Structured per-run telemetry: every pipeline run appends typed events
//! (stage completions with wall time and node counts, cache hits/misses,
//! poisoned-entry rebuilds) to a [`Telemetry`] sink threaded through the
//! shared [`crate::PipelineCtx`]. The sink renders to a hand-rolled JSON
//! event stream for `--telemetry json` and is queryable in tests — the
//! cache-reuse guarantee ("a warm run performs zero ADD apply steps") is
//! asserted against it.

use std::time::Duration;

/// The canonical stages of the build/eval path, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Netlist acquisition: file parse (BLIF/Verilog) or benchmark
    /// generation.
    ParseNetlist,
    /// Capacitive back-annotation against the cell library.
    Annotate,
    /// The budgeted symbolic gate loop (paper Fig. 6) accumulating
    /// partial-sum ADDs.
    BuildAdd,
    /// Partial-sum fold, size-ceiling enforcement, diagonal gating and
    /// leaf recalibration down to the finished model.
    Collapse,
    /// Flattening the model ADD into an arena-free evaluation kernel.
    CompileKernel,
    /// Batched trace evaluation on the compiled kernel.
    Evaluate,
}

impl Stage {
    /// Stable kebab-case name (used in JSON and log lines).
    pub fn name(self) -> &'static str {
        match self {
            Stage::ParseNetlist => "parse-netlist",
            Stage::Annotate => "annotate",
            Stage::BuildAdd => "build-add",
            Stage::Collapse => "collapse",
            Stage::CompileKernel => "compile-kernel",
            Stage::Evaluate => "evaluate",
        }
    }
}

/// Which artifact kind a cache event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A saved `.cfm` power model.
    Model,
    /// A compiled `.cfk` evaluation kernel.
    Kernel,
}

impl ArtifactKind {
    /// Stable name (used in JSON and log lines).
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::Model => "model",
            ArtifactKind::Kernel => "kernel",
        }
    }

    /// The on-disk file extension of the artifact.
    pub fn extension(self) -> &'static str {
        match self {
            ArtifactKind::Model => "cfm",
            ArtifactKind::Kernel => "cfk",
        }
    }
}

/// One telemetry event.
#[derive(Debug, Clone)]
pub enum Event {
    /// A stage ran to completion.
    Stage {
        /// Which stage.
        stage: Stage,
        /// Wall time the stage took.
        wall: Duration,
        /// The decision-diagram node count most relevant to the stage
        /// (live arena nodes after `BuildAdd`, final model size after
        /// `Collapse`), when one exists.
        nodes: Option<u64>,
        /// Degradation rungs taken by the stage.
        rungs: u64,
        /// Free-form one-line detail.
        detail: String,
    },
    /// An artifact was served from the content-addressed store.
    CacheHit {
        /// Artifact kind.
        kind: ArtifactKind,
        /// Content hash (hex).
        key: String,
    },
    /// No artifact was stored under the key; the stage ran cold.
    CacheMiss {
        /// Artifact kind.
        kind: ArtifactKind,
        /// Content hash (hex).
        key: String,
    },
    /// A freshly built artifact was written to the store.
    CacheStored {
        /// Artifact kind.
        kind: ArtifactKind,
        /// Content hash (hex).
        key: String,
    },
    /// An artifact file existed under the key but failed validation; the
    /// pipeline rebuilt instead of serving it.
    CachePoisoned {
        /// Artifact kind.
        kind: ArtifactKind,
        /// Content hash (hex).
        key: String,
        /// Why the entry was rejected.
        reason: String,
    },
    /// Writing a freshly built artifact to the store failed; the run
    /// continued uncached.
    CacheStoreFailed {
        /// Artifact kind.
        kind: ArtifactKind,
        /// Content hash (hex).
        key: String,
        /// The write failure.
        reason: String,
    },
}

/// An append-only event sink threaded through the whole pipeline run.
#[derive(Debug, Default)]
pub struct Telemetry {
    events: Vec<Event>,
}

impl Telemetry {
    /// An empty sink.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Appends an event.
    pub fn emit(&mut self, event: Event) {
        self.events.push(event);
    }

    /// All events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of cache hits recorded (across artifact kinds).
    pub fn cache_hits(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::CacheHit { .. }))
            .count()
    }

    /// Number of cache misses recorded (across artifact kinds; poisoned
    /// entries count as misses — the artifact was rebuilt).
    pub fn cache_misses(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::CacheMiss { .. } | Event::CachePoisoned { .. }))
            .count()
    }

    /// Total wall time recorded for `stage` across the run.
    pub fn stage_wall(&self, stage: Stage) -> Duration {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Stage { stage: s, wall, .. } if *s == stage => Some(*wall),
                _ => None,
            })
            .sum()
    }

    /// Whether any completed stage matches `stage`.
    pub fn stage_ran(&self, stage: Stage) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, Event::Stage { stage: s, .. } if *s == stage))
    }

    /// Renders the event stream as a JSON array (one object per event).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, event) in self.events.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&event_json(event));
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out
    }
}

fn event_json(event: &Event) -> String {
    match event {
        Event::Stage {
            stage,
            wall,
            nodes,
            rungs,
            detail,
        } => {
            let mut obj = format!(
                "{{\"event\": \"stage\", \"stage\": \"{}\", \"wall_ms\": {:.3}",
                stage.name(),
                wall.as_secs_f64() * 1e3
            );
            if let Some(nodes) = nodes {
                obj.push_str(&format!(", \"nodes\": {nodes}"));
            }
            if *rungs > 0 {
                obj.push_str(&format!(", \"degradation_rungs\": {rungs}"));
            }
            obj.push_str(&format!(", \"detail\": \"{}\"}}", json_escape(detail)));
            obj
        }
        Event::CacheHit { kind, key } => cache_json("cache-hit", *kind, key, None),
        Event::CacheMiss { kind, key } => cache_json("cache-miss", *kind, key, None),
        Event::CacheStored { kind, key } => cache_json("cache-stored", *kind, key, None),
        Event::CachePoisoned { kind, key, reason } => {
            cache_json("cache-poisoned", *kind, key, Some(reason))
        }
        Event::CacheStoreFailed { kind, key, reason } => {
            cache_json("cache-store-failed", *kind, key, Some(reason))
        }
    }
}

fn cache_json(event: &str, kind: ArtifactKind, key: &str, reason: Option<&str>) -> String {
    let mut obj = format!(
        "{{\"event\": \"{event}\", \"artifact\": \"{}\", \"key\": \"{}\"",
        kind.name(),
        json_escape(key)
    );
    if let Some(reason) = reason {
        obj.push_str(&format!(", \"reason\": \"{}\"", json_escape(reason)));
    }
    obj.push('}');
    obj
}

/// Escapes a string for embedding in a JSON literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_json() {
        let mut t = Telemetry::new();
        t.emit(Event::Stage {
            stage: Stage::BuildAdd,
            wall: Duration::from_millis(12),
            nodes: Some(345),
            rungs: 1,
            detail: "8 gates".to_owned(),
        });
        t.emit(Event::CacheMiss {
            kind: ArtifactKind::Kernel,
            key: "abc123".to_owned(),
        });
        t.emit(Event::CacheHit {
            kind: ArtifactKind::Model,
            key: "abc123".to_owned(),
        });
        t.emit(Event::CachePoisoned {
            kind: ArtifactKind::Model,
            key: "abc123".to_owned(),
            reason: "bad \"header\"".to_owned(),
        });
        assert_eq!(t.cache_hits(), 1);
        assert_eq!(t.cache_misses(), 2);
        assert!(t.stage_ran(Stage::BuildAdd));
        assert!(!t.stage_ran(Stage::Evaluate));
        assert_eq!(t.stage_wall(Stage::BuildAdd), Duration::from_millis(12));
        let json = t.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"stage\": \"build-add\""), "{json}");
        assert!(json.contains("\"nodes\": 345"), "{json}");
        assert!(json.contains("\"degradation_rungs\": 1"), "{json}");
        assert!(json.contains("\"event\": \"cache-poisoned\""), "{json}");
        assert!(json.contains("bad \\\"header\\\""), "{json}");
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Stage::ParseNetlist.name(), "parse-netlist");
        assert_eq!(Stage::CompileKernel.name(), "compile-kernel");
        assert_eq!(ArtifactKind::Model.extension(), "cfm");
        assert_eq!(ArtifactKind::Kernel.extension(), "cfk");
    }
}
