//! # charfree-pipeline — one typed build/eval path for the workspace
//!
//! The paper's flow is inherently staged — netlist → symbolic ADD
//! construction (Fig. 6) → collapse (Eqs. 5–8) → kernel compile →
//! evaluation — and every consumer used to re-wire that chain by hand.
//! This crate makes the chain a first-class value:
//!
//! * [`PipelineCtx`] — the shared run context: cell library, build
//!   options (threading the `charfree-dd` budget/cancellation knobs), an
//!   optional content-addressed [`ArtifactStore`], a structured
//!   [`Telemetry`] sink and an [`ApplyStats`] counter proving how much
//!   symbolic work a run actually performed.
//! * Stages as composable values — [`ParseNetlist`], [`Annotate`],
//!   [`BuildModel`], [`CompileKernel`], [`Evaluate`] implement
//!   [`PipelineStage`] and chain with [`PipelineStage::then`]; every
//!   stage shares the one `PipelineCtx`.
//! * Content-addressed caching — models (`.cfm`) and kernels (`.cfk`)
//!   are keyed by a hash of (canonical netlist bytes, library
//!   fingerprint, build options); a second run on the same inputs
//!   warm-loads the kernel and performs **zero** ADD apply steps.
//!   Artifacts are re-validated on load; any mismatch falls back to a
//!   rebuild.
//!
//! ```
//! use charfree_netlist::Library;
//! use charfree_pipeline::{Annotate, ParseNetlist, PipelineCtx, PipelineStage, Source};
//!
//! let mut ctx = PipelineCtx::new(Library::test_library());
//! let netlist = ParseNetlist
//!     .then(Annotate)
//!     .run(&mut ctx, Source::Bench("decod".to_owned()))
//!     .expect("built-in benchmark");
//! assert_eq!(netlist.num_inputs(), 5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(clippy::unwrap_used)]

mod error;
pub mod faultio;
pub mod store;
pub mod telemetry;

pub use error::PipelineError;
pub use faultio::{FaultConfig, FaultIo, FaultPlan, RealIo, StreamFault, StreamOp};
pub use store::{ArtifactKey, ArtifactStore, CacheLookup, QuarantinedEntry, RecoveryReport};
pub use telemetry::{ArtifactKind, Event, Stage, Telemetry};

use charfree_core::{AddPowerModel, ApproxStrategy, ModelBuilder};
use charfree_dd::{ApplyStats, CancelToken};
use charfree_engine::{Kernel, TraceEngine, TraceSummary};
use charfree_netlist::{benchmarks, blif, verilog, Library, Netlist};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a pipeline run's input comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// A netlist file — BLIF, or structural Verilog for `.v`/`.sv`.
    NetlistFile(PathBuf),
    /// A built-in benchmark generator, by name.
    Bench(String),
    /// A saved `.cfm` power-model artifact.
    ModelFile(PathBuf),
    /// A compiled `.cfk` kernel artifact.
    KernelFile(PathBuf),
}

impl Source {
    /// Classifies a CLI operand: `.cfk`/`.cfm` by extension, an existing
    /// file (or netlist extension) as a netlist, anything else as a
    /// benchmark name.
    pub fn infer(operand: &str) -> Source {
        let path = Path::new(operand);
        if operand.ends_with(".cfk") {
            Source::KernelFile(path.to_path_buf())
        } else if operand.ends_with(".cfm") {
            Source::ModelFile(path.to_path_buf())
        } else if operand.ends_with(".blif")
            || operand.ends_with(".v")
            || operand.ends_with(".sv")
            || path.exists()
        {
            Source::NetlistFile(path.to_path_buf())
        } else {
            Source::Bench(operand.to_owned())
        }
    }

    /// One-line description for telemetry and diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Source::NetlistFile(p) => format!("netlist {}", p.display()),
            Source::Bench(name) => format!("bench {name}"),
            Source::ModelFile(p) => format!("model {}", p.display()),
            Source::KernelFile(p) => format!("kernel {}", p.display()),
        }
    }
}

/// Every model-construction knob the pipeline exposes, in one plain
/// value. The option set doubles as a cache-key component: see
/// [`BuildOptions::fingerprint`].
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// The paper's `MAX`: cap the finished diagram, approximating during
    /// construction (`None` = exact).
    pub max_nodes: Option<usize>,
    /// Build the conservative upper-bound model instead of the
    /// average-accurate one.
    pub upper_bound: bool,
    /// Override the collapse-measure toggle mixture (`None` = builder
    /// default).
    pub collapse_toggles: Option<Vec<f64>>,
    /// Analytic terminal recalibration (default on).
    pub leaf_recalibration: bool,
    /// Zero the no-transition diagonal after approximation (default on).
    pub diagonal_gating: bool,
    /// Resource-governor live-node ceiling.
    pub node_budget: Option<u64>,
    /// Resource-governor apply-step ceiling (deterministic CPU proxy).
    pub step_budget: Option<u64>,
    /// Wall-clock deadline for construction. Nondeterministic — setting
    /// it makes the build uncacheable.
    pub time_budget: Option<Duration>,
    /// Strict mode: budget trips fail the build instead of degrading it.
    pub strict: bool,
    /// Cooperative cancellation. Nondeterministic — setting it makes the
    /// build uncacheable.
    pub cancel: Option<CancelToken>,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            max_nodes: None,
            upper_bound: false,
            collapse_toggles: None,
            leaf_recalibration: true,
            diagonal_gating: true,
            node_budget: None,
            step_budget: None,
            time_budget: None,
            strict: false,
            cancel: None,
        }
    }
}

impl BuildOptions {
    /// The paper's plain configuration: uniform collapse measure, no
    /// diagonal gating, no leaf recalibration.
    pub fn paper_plain() -> Self {
        BuildOptions {
            collapse_toggles: Some(vec![0.5]),
            leaf_recalibration: false,
            diagonal_gating: false,
            ..BuildOptions::default()
        }
    }

    /// Whether a build under these options is a pure function of
    /// (netlist, library, options). Wall-clock deadlines and cancel
    /// tokens make the degradation point timing-dependent, so such
    /// builds bypass the artifact cache entirely.
    pub fn cacheable(&self) -> bool {
        self.time_budget.is_none() && self.cancel.is_none()
    }

    /// A canonical textual digest of every deterministic knob, mixed
    /// into the artifact cache key. Only meaningful when
    /// [`BuildOptions::cacheable`] holds.
    pub fn fingerprint(&self) -> String {
        let mut out = String::from("options v1\n");
        let _ = writeln!(out, "max_nodes {:?}", self.max_nodes);
        let _ = writeln!(out, "upper_bound {}", self.upper_bound);
        match &self.collapse_toggles {
            None => {
                let _ = writeln!(out, "collapse_toggles default");
            }
            Some(toggles) => {
                let _ = write!(out, "collapse_toggles");
                for t in toggles {
                    let _ = write!(out, " {:016x}", t.to_bits());
                }
                out.push('\n');
            }
        }
        let _ = writeln!(out, "leaf_recalibration {}", self.leaf_recalibration);
        let _ = writeln!(out, "diagonal_gating {}", self.diagonal_gating);
        let _ = writeln!(out, "node_budget {:?}", self.node_budget);
        let _ = writeln!(out, "step_budget {:?}", self.step_budget);
        let _ = writeln!(out, "strict {}", self.strict);
        out
    }

    /// Configures a [`ModelBuilder`] for `netlist` with these options.
    fn configure<'a>(&self, netlist: &'a Netlist) -> ModelBuilder<'a> {
        let mut builder = ModelBuilder::new(netlist);
        if let Some(max) = self.max_nodes {
            builder = builder.max_nodes(max);
        }
        if self.upper_bound {
            builder = builder.strategy(ApproxStrategy::UpperBound);
        }
        if let Some(toggles) = &self.collapse_toggles {
            builder = builder.collapse_toggles(toggles);
        }
        builder = builder
            .leaf_recalibration(self.leaf_recalibration)
            .diagonal_gating(self.diagonal_gating)
            .strict(self.strict);
        if let Some(nodes) = self.node_budget {
            builder = builder.node_budget(nodes);
        }
        if let Some(steps) = self.step_budget {
            builder = builder.step_budget(steps);
        }
        if let Some(deadline) = self.time_budget {
            builder = builder.time_budget(deadline);
        }
        if let Some(token) = &self.cancel {
            builder = builder.cancel_token(token.clone());
        }
        builder
    }
}

/// Loads a saved `.cfm` model from disk (outside the cache — an explicit
/// user artifact).
///
/// # Errors
///
/// [`PipelineError::Io`] if the file cannot be read,
/// [`PipelineError::Parse`] if it fails validation.
pub fn load_model_file(path: &Path) -> Result<AddPowerModel, PipelineError> {
    let bytes = fs::read(path).map_err(|e| PipelineError::Io {
        context: path.display().to_string(),
        source: e,
    })?;
    AddPowerModel::load(bytes.as_slice()).map_err(|e| PipelineError::Parse {
        context: path.display().to_string(),
        message: e.to_string(),
    })
}

/// Loads a compiled `.cfk` kernel from disk (re-validated on load).
///
/// # Errors
///
/// [`PipelineError::Io`] if the file cannot be read,
/// [`PipelineError::Parse`] if it fails validation.
pub fn load_kernel_file(path: &Path) -> Result<Kernel, PipelineError> {
    let bytes = fs::read(path).map_err(|e| PipelineError::Io {
        context: path.display().to_string(),
        source: e,
    })?;
    Kernel::load(bytes.as_slice()).map_err(|e| PipelineError::Parse {
        context: path.display().to_string(),
        message: e.to_string(),
    })
}

/// The shared context one pipeline run threads through every stage.
#[derive(Debug)]
pub struct PipelineCtx {
    library: Library,
    options: BuildOptions,
    store: Option<ArtifactStore>,
    /// The run's structured event sink (public so drivers can render or
    /// inspect it after the run).
    pub telemetry: Telemetry,
    stats: Arc<ApplyStats>,
}

impl PipelineCtx {
    /// A context with default build options, no artifact store and a
    /// fresh telemetry sink.
    pub fn new(library: Library) -> PipelineCtx {
        PipelineCtx {
            library,
            options: BuildOptions::default(),
            store: None,
            telemetry: Telemetry::new(),
            stats: ApplyStats::shared(),
        }
    }

    /// Replaces the build options.
    pub fn with_options(mut self, options: BuildOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches a content-addressed artifact store.
    pub fn with_store(mut self, store: ArtifactStore) -> Self {
        self.store = Some(store);
        self
    }

    /// The cell library of this run.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// The build options of this run.
    pub fn options(&self) -> &BuildOptions {
        &self.options
    }

    /// The attached artifact store, if any.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_ref()
    }

    /// Cache-missing ADD apply/ITE steps performed by builds in this
    /// context so far. A warm-cache run leaves this at zero — the
    /// telemetry-verifiable "no symbolic work was redone" guarantee.
    pub fn apply_steps(&self) -> u64 {
        self.stats.apply_steps()
    }

    /// The shared [`ApplyStats`] sink (attached to every build's budget).
    pub fn apply_stats(&self) -> &Arc<ApplyStats> {
        &self.stats
    }

    /// Stage `ParseNetlist`: acquires a netlist from a file or a
    /// benchmark generator. Loads are *not* annotated yet — compose with
    /// [`PipelineCtx::annotate`] (or use [`PipelineCtx::load_netlist`]).
    ///
    /// # Errors
    ///
    /// I/O and parse failures; [`PipelineError::Unsupported`] for
    /// model/kernel sources, which carry no netlist.
    pub fn parse_netlist(&mut self, source: &Source) -> Result<Netlist, PipelineError> {
        let t0 = Instant::now();
        let netlist = match source {
            Source::NetlistFile(path) => {
                let text = fs::read_to_string(path).map_err(|e| PipelineError::Io {
                    context: path.display().to_string(),
                    source: e,
                })?;
                let parsed = if path.extension().is_some_and(|e| e == "v" || e == "sv") {
                    verilog::parse(&text).map_err(|e| PipelineError::Parse {
                        context: path.display().to_string(),
                        message: e.to_string(),
                    })?
                } else {
                    blif::parse(&text).map_err(|e| PipelineError::Parse {
                        context: path.display().to_string(),
                        message: e.to_string(),
                    })?
                };
                parsed
            }
            Source::Bench(name) => benchmarks::by_name(name, &self.library)
                .ok_or_else(|| PipelineError::UnknownInput(name.clone()))?,
            Source::ModelFile(_) | Source::KernelFile(_) => {
                return Err(PipelineError::Unsupported(format!(
                    "{} is a compiled artifact, not a netlist source",
                    source.describe()
                )))
            }
        };
        self.telemetry.emit(Event::Stage {
            stage: Stage::ParseNetlist,
            wall: t0.elapsed(),
            nodes: None,
            rungs: 0,
            detail: format!(
                "{} ({} inputs, {} gates)",
                source.describe(),
                netlist.num_inputs(),
                netlist.num_gates()
            ),
        });
        Ok(netlist)
    }

    /// Stage `Annotate`: back-annotates capacitive loads from the
    /// context's library onto every net (idempotent).
    pub fn annotate(&mut self, mut netlist: Netlist) -> Netlist {
        let t0 = Instant::now();
        netlist.annotate_loads(&self.library);
        self.telemetry.emit(Event::Stage {
            stage: Stage::Annotate,
            wall: t0.elapsed(),
            nodes: None,
            rungs: 0,
            detail: format!(
                "library `{}`, total load {:.1} fF",
                self.library.name(),
                netlist.total_load().femtofarads()
            ),
        });
        netlist
    }

    /// [`PipelineCtx::parse_netlist`] followed by
    /// [`PipelineCtx::annotate`].
    ///
    /// # Errors
    ///
    /// See [`PipelineCtx::parse_netlist`].
    pub fn load_netlist(&mut self, source: &Source) -> Result<Netlist, PipelineError> {
        let netlist = self.parse_netlist(source)?;
        Ok(self.annotate(netlist))
    }

    /// The content key the given netlist's model artifact lives under,
    /// when caching applies (a store is attached and the options are
    /// deterministic).
    fn artifact_key(&self, netlist: &Netlist, kind: ArtifactKind) -> Option<ArtifactKey> {
        if self.store.is_none() || !self.options.cacheable() {
            return None;
        }
        let canonical = blif::write(netlist);
        Some(ArtifactKey::derive(&[
            kind.name(),
            &canonical,
            &self.library.fingerprint(),
            &self.options.fingerprint(),
        ]))
    }

    /// Stages `BuildAdd` + `Collapse`, cache-aware: returns the netlist's
    /// power model, warm-loading it from the store when an identical
    /// build is already cached (zero apply steps in that case). Freshly
    /// built, non-degraded models are stored back.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Build`] on netlist validation failure or a
    /// strict-mode budget trip.
    pub fn build_model(&mut self, netlist: &Netlist) -> Result<AddPowerModel, PipelineError> {
        let key = self.artifact_key(netlist, ArtifactKind::Model);
        if let (Some(key), Some(store)) = (key, &self.store) {
            match store.load_model(key) {
                CacheLookup::Hit(mut model) => {
                    model.set_name(netlist.name());
                    self.telemetry.emit(Event::CacheHit {
                        kind: ArtifactKind::Model,
                        key: key.hex(),
                    });
                    return Ok(model);
                }
                CacheLookup::Miss => self.telemetry.emit(Event::CacheMiss {
                    kind: ArtifactKind::Model,
                    key: key.hex(),
                }),
                CacheLookup::Poisoned(reason) => self.telemetry.emit(Event::CachePoisoned {
                    kind: ArtifactKind::Model,
                    key: key.hex(),
                    reason,
                }),
            }
        }

        let steps_before = self.stats.apply_steps();
        let t0 = Instant::now();
        let partial = self
            .options
            .configure(netlist)
            .stats(self.stats.clone())
            .try_accumulate()?;
        self.telemetry.emit(Event::Stage {
            stage: Stage::BuildAdd,
            wall: t0.elapsed(),
            nodes: Some(partial.arena_nodes() as u64),
            rungs: partial.degradation_rungs() as u64,
            detail: format!(
                "{} gates, {} apply steps",
                netlist.num_gates(),
                self.stats.apply_steps() - steps_before
            ),
        });

        let t1 = Instant::now();
        let mut model = partial.collapse();
        model.set_name(netlist.name());
        self.telemetry.emit(Event::Stage {
            stage: Stage::Collapse,
            wall: t1.elapsed(),
            nodes: Some(model.size() as u64),
            rungs: model.degradation().map_or(0, |d| d.rungs.len() as u64),
            detail: format!(
                "{} rounds, {} nodes collapsed{}",
                model.report().approximation_rounds,
                model.report().nodes_collapsed,
                if model.report().exact { " (exact)" } else { "" }
            ),
        });

        if let (Some(key), Some(store)) = (key, &self.store) {
            // Degraded models are not persisted: the `.cfm` format drops
            // the degradation report, so a warm load would silently
            // launder a degraded build into a clean-looking one.
            if model.degradation().is_none() {
                match store.store_model(key, &model) {
                    Ok(()) => self.telemetry.emit(Event::CacheStored {
                        kind: ArtifactKind::Model,
                        key: key.hex(),
                    }),
                    Err(e) => self.telemetry.emit(Event::CacheStoreFailed {
                        kind: ArtifactKind::Model,
                        key: key.hex(),
                        reason: e.to_string(),
                    }),
                }
            }
        }
        Ok(model)
    }

    /// Stage `CompileKernel`, cache-aware at the kernel level: a cached
    /// `.cfk` short-circuits the *entire* build (no model is loaded or
    /// constructed); otherwise the model is obtained via
    /// [`PipelineCtx::build_model`] (which may itself warm-load) and
    /// compiled.
    ///
    /// # Errors
    ///
    /// See [`PipelineCtx::build_model`].
    pub fn compile_kernel(&mut self, netlist: &Netlist) -> Result<Kernel, PipelineError> {
        let key = self.artifact_key(netlist, ArtifactKind::Kernel);
        if let (Some(key), Some(store)) = (key, &self.store) {
            match store.load_kernel(key) {
                CacheLookup::Hit(kernel) => {
                    self.telemetry.emit(Event::CacheHit {
                        kind: ArtifactKind::Kernel,
                        key: key.hex(),
                    });
                    return Ok(kernel);
                }
                CacheLookup::Miss => self.telemetry.emit(Event::CacheMiss {
                    kind: ArtifactKind::Kernel,
                    key: key.hex(),
                }),
                CacheLookup::Poisoned(reason) => self.telemetry.emit(Event::CachePoisoned {
                    kind: ArtifactKind::Kernel,
                    key: key.hex(),
                    reason,
                }),
            }
        }

        let model = self.build_model(netlist)?;
        let kernel = self.compile_kernel_from(&model);
        if let (Some(key), Some(store)) = (key, &self.store) {
            if model.degradation().is_none() {
                match store.store_kernel(key, &kernel) {
                    Ok(()) => self.telemetry.emit(Event::CacheStored {
                        kind: ArtifactKind::Kernel,
                        key: key.hex(),
                    }),
                    Err(e) => self.telemetry.emit(Event::CacheStoreFailed {
                        kind: ArtifactKind::Kernel,
                        key: key.hex(),
                        reason: e.to_string(),
                    }),
                }
            }
        }
        Ok(kernel)
    }

    /// Stage `CompileKernel` on an already-built model (no caching — the
    /// netlist provenance is unknown).
    pub fn compile_kernel_from(&mut self, model: &AddPowerModel) -> Kernel {
        let t0 = Instant::now();
        let kernel = Kernel::compile(model);
        self.telemetry.emit(Event::Stage {
            stage: Stage::CompileKernel,
            wall: t0.elapsed(),
            nodes: Some(model.size() as u64),
            rungs: 0,
            detail: format!(
                "{} instrs, {} terminals, {} bytes",
                kernel.num_instrs(),
                kernel.num_terminals(),
                kernel.bytes()
            ),
        });
        kernel
    }

    /// An evaluation kernel from any source kind: `.cfk` loads directly
    /// (zero symbolic work), `.cfm` loads the model and compiles it, and
    /// netlist/bench sources run the full (cache-aware) pipeline.
    ///
    /// # Errors
    ///
    /// I/O, parse and build failures from the underlying stages.
    pub fn kernel_for(&mut self, source: &Source) -> Result<Kernel, PipelineError> {
        match source {
            Source::KernelFile(path) => load_kernel_file(path),
            Source::ModelFile(path) => {
                let model = load_model_file(path)?;
                Ok(self.compile_kernel_from(&model))
            }
            Source::NetlistFile(_) | Source::Bench(_) => {
                let netlist = self.load_netlist(source)?;
                self.compile_kernel(&netlist)
            }
        }
    }

    /// An arena power model from any source kind that carries one.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Unsupported`] for kernel sources (a `.cfk` cannot
    /// be turned back into an arena model); otherwise the underlying
    /// stage failures.
    pub fn model_for(&mut self, source: &Source) -> Result<AddPowerModel, PipelineError> {
        match source {
            Source::ModelFile(path) => load_model_file(path),
            Source::KernelFile(path) => Err(PipelineError::Unsupported(format!(
                "{}: compiled kernels cannot be lifted back into an arena model; \
                 pass the `.cfm` (or the netlist) instead",
                path.display()
            ))),
            Source::NetlistFile(_) | Source::Bench(_) => {
                let netlist = self.load_netlist(source)?;
                self.build_model(&netlist)
            }
        }
    }

    /// Stage `Evaluate`: batched trace evaluation, summarized.
    pub fn evaluate(
        &mut self,
        kernel: &Kernel,
        patterns: &[Vec<bool>],
        jobs: usize,
    ) -> TraceSummary {
        let t0 = Instant::now();
        let summary = TraceEngine::new(kernel).jobs(jobs).evaluate(patterns);
        self.telemetry.emit(Event::Stage {
            stage: Stage::Evaluate,
            wall: t0.elapsed(),
            nodes: None,
            rungs: 0,
            detail: format!("{} transitions, jobs={jobs}", summary.transitions),
        });
        summary
    }

    /// Stage `Evaluate`: batched per-cycle trace (switched fF per
    /// transition).
    pub fn trace(&mut self, kernel: &Kernel, patterns: &[Vec<bool>], jobs: usize) -> Vec<f64> {
        let t0 = Instant::now();
        let trace = TraceEngine::new(kernel).jobs(jobs).trace(patterns);
        self.telemetry.emit(Event::Stage {
            stage: Stage::Evaluate,
            wall: t0.elapsed(),
            nodes: None,
            rungs: 0,
            detail: format!("{} transitions traced, jobs={jobs}", trace.len()),
        });
        trace
    }
}

/// A typed pipeline stage: a value that consumes an input, may consult
/// and update the shared [`PipelineCtx`] (telemetry, cache, budget), and
/// produces the next stage's input. Chain stages with
/// [`PipelineStage::then`].
pub trait PipelineStage {
    /// What the stage consumes.
    type In;
    /// What the stage produces.
    type Out;

    /// Runs the stage.
    ///
    /// # Errors
    ///
    /// Stage-specific [`PipelineError`]s.
    fn run(&self, ctx: &mut PipelineCtx, input: Self::In) -> Result<Self::Out, PipelineError>;

    /// Sequential composition: `a.then(b)` feeds `a`'s output to `b`.
    fn then<B>(self, next: B) -> Then<Self, B>
    where
        Self: Sized,
        B: PipelineStage<In = Self::Out>,
    {
        Then { first: self, next }
    }
}

/// Sequential composition of two stages (see [`PipelineStage::then`]).
#[derive(Debug, Clone, Copy)]
pub struct Then<A, B> {
    first: A,
    next: B,
}

impl<A, B> PipelineStage for Then<A, B>
where
    A: PipelineStage,
    B: PipelineStage<In = A::Out>,
{
    type In = A::In;
    type Out = B::Out;

    fn run(&self, ctx: &mut PipelineCtx, input: Self::In) -> Result<Self::Out, PipelineError> {
        let mid = self.first.run(ctx, input)?;
        self.next.run(ctx, mid)
    }
}

/// Stage value: [`Source`] → [`Netlist`] (see
/// [`PipelineCtx::parse_netlist`]).
#[derive(Debug, Clone, Copy)]
pub struct ParseNetlist;

impl PipelineStage for ParseNetlist {
    type In = Source;
    type Out = Netlist;

    fn run(&self, ctx: &mut PipelineCtx, input: Source) -> Result<Netlist, PipelineError> {
        ctx.parse_netlist(&input)
    }
}

/// Stage value: [`Netlist`] → annotated [`Netlist`] (see
/// [`PipelineCtx::annotate`]).
#[derive(Debug, Clone, Copy)]
pub struct Annotate;

impl PipelineStage for Annotate {
    type In = Netlist;
    type Out = Netlist;

    fn run(&self, ctx: &mut PipelineCtx, input: Netlist) -> Result<Netlist, PipelineError> {
        Ok(ctx.annotate(input))
    }
}

/// Stage value: [`Netlist`] → [`AddPowerModel`] (cache-aware `BuildAdd` +
/// `Collapse`; see [`PipelineCtx::build_model`]).
#[derive(Debug, Clone, Copy)]
pub struct BuildModel;

impl PipelineStage for BuildModel {
    type In = Netlist;
    type Out = AddPowerModel;

    fn run(&self, ctx: &mut PipelineCtx, input: Netlist) -> Result<AddPowerModel, PipelineError> {
        ctx.build_model(&input)
    }
}

/// Stage value: [`Netlist`] → [`Kernel`] (kernel-level cache first, then
/// the model path; see [`PipelineCtx::compile_kernel`]).
#[derive(Debug, Clone, Copy)]
pub struct CompileKernel;

impl PipelineStage for CompileKernel {
    type In = Netlist;
    type Out = Kernel;

    fn run(&self, ctx: &mut PipelineCtx, input: Netlist) -> Result<Kernel, PipelineError> {
        ctx.compile_kernel(&input)
    }
}

/// Stage value: [`Kernel`] → [`TraceSummary`] over a fixed pattern
/// sequence (see [`PipelineCtx::evaluate`]).
#[derive(Debug, Clone, Copy)]
pub struct Evaluate<'p> {
    /// The transition sequence to evaluate.
    pub patterns: &'p [Vec<bool>],
    /// Worker count (`0` = one per core).
    pub jobs: usize,
}

impl PipelineStage for Evaluate<'_> {
    type In = Kernel;
    type Out = TraceSummary;

    fn run(&self, ctx: &mut PipelineCtx, input: Kernel) -> Result<TraceSummary, PipelineError> {
        Ok(ctx.evaluate(&input, self.patterns, self.jobs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_inference() {
        assert_eq!(
            Source::infer("m.cfk"),
            Source::KernelFile(PathBuf::from("m.cfk"))
        );
        assert_eq!(
            Source::infer("m.cfm"),
            Source::ModelFile(PathBuf::from("m.cfm"))
        );
        assert_eq!(
            Source::infer("n.blif"),
            Source::NetlistFile(PathBuf::from("n.blif"))
        );
        assert_eq!(
            Source::infer("n.v"),
            Source::NetlistFile(PathBuf::from("n.v"))
        );
        assert_eq!(Source::infer("decod"), Source::Bench("decod".to_owned()));
    }

    #[test]
    fn option_fingerprints_cover_every_deterministic_knob() {
        let base = BuildOptions::default().fingerprint();
        let variants = [
            BuildOptions {
                max_nodes: Some(100),
                ..BuildOptions::default()
            },
            BuildOptions {
                upper_bound: true,
                ..BuildOptions::default()
            },
            BuildOptions {
                node_budget: Some(500),
                ..BuildOptions::default()
            },
            BuildOptions {
                step_budget: Some(1000),
                ..BuildOptions::default()
            },
            BuildOptions {
                strict: true,
                ..BuildOptions::default()
            },
            BuildOptions::paper_plain(),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base, v.fingerprint(), "variant {i} must change the key");
            assert!(v.cacheable(), "variant {i} is deterministic");
        }
        assert_eq!(base, BuildOptions::default().fingerprint());
    }

    #[test]
    fn nondeterministic_builds_are_uncacheable() {
        let timed = BuildOptions {
            time_budget: Some(Duration::from_secs(1)),
            ..BuildOptions::default()
        };
        assert!(!timed.cacheable());
        let cancellable = BuildOptions {
            cancel: Some(CancelToken::new()),
            ..BuildOptions::default()
        };
        assert!(!cancellable.cacheable());
    }

    #[test]
    fn composed_stages_share_the_ctx() {
        let mut ctx = PipelineCtx::new(Library::test_library());
        let model = ParseNetlist
            .then(Annotate)
            .then(BuildModel)
            .run(&mut ctx, Source::Bench("decod".to_owned()))
            .expect("decod builds");
        assert_eq!(model.num_inputs(), 5);
        assert!(ctx.telemetry.stage_ran(Stage::ParseNetlist));
        assert!(ctx.telemetry.stage_ran(Stage::Annotate));
        assert!(ctx.telemetry.stage_ran(Stage::BuildAdd));
        assert!(ctx.telemetry.stage_ran(Stage::Collapse));
        assert!(ctx.apply_steps() > 0, "a cold build does symbolic work");

        let err = ctx
            .parse_netlist(&Source::Bench("nope".to_owned()))
            .expect_err("unknown bench");
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn strict_budget_trip_surfaces_as_build_error() {
        let mut ctx = PipelineCtx::new(Library::test_library()).with_options(BuildOptions {
            node_budget: Some(10),
            strict: true,
            ..BuildOptions::default()
        });
        let netlist = ctx
            .load_netlist(&Source::Bench("cm85".to_owned()))
            .expect("cm85 loads");
        let err = ctx.build_model(&netlist).expect_err("trips the budget");
        assert!(matches!(err, PipelineError::Build(_)), "{err}");
    }
}
