//! Injectable I/O fault layer.
//!
//! Every filesystem touch the artifact store makes — and every stream
//! read/write the server makes — goes through a [`FaultIo`] handle. The
//! default [`RealIo`] is a zero-cost passthrough to `std::fs`. Tests and
//! the conform `chaos` campaign substitute a [`FaultPlan`]: a
//! deterministic, seeded schedule that injects short writes, transient
//! `EINTR`/`EAGAIN`-style errors, torn renames, and slow or stalled
//! clients at configurable rates. Determinism matters: a chaos failure
//! reproduces from its seed alone.
//!
//! Fault decisions are a pure function of `(seed, op_counter)` via
//! SplitMix64, so a plan shared across threads still yields a fixed
//! total fault mix even though thread interleaving varies.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Which side of a connection an injected stream fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOp {
    /// Reading a request line from the peer.
    Read,
    /// Writing a response line to the peer.
    Write,
}

/// A fault injected into a stream operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamFault {
    /// Behave like an `EINTR`/`EAGAIN`: the operation makes no progress
    /// this round and should be retried.
    Transient,
    /// Deliver (or accept) at most this many bytes this round,
    /// simulating a short read/write on a congested socket.
    Short(usize),
    /// The peer stalls for this long before the operation proceeds.
    Stall(Duration),
}

/// Trait over the file and stream operations the store and server
/// perform. All methods default to faithful passthroughs; an injector
/// overrides them to misbehave deterministically.
pub trait FaultIo: Send + Sync + fmt::Debug {
    /// `fs::create_dir_all`.
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    /// `fs::read`.
    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    /// `fs::write` (create or truncate, then write all bytes).
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    /// Append `bytes` to `path`, creating it if missing.
    fn append_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(bytes)
    }

    /// `File::sync_all` on `path`.
    fn sync_file(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    /// fsync the directory itself so a completed rename survives power
    /// loss. Directory fds are a unix notion; elsewhere this is a no-op.
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        #[cfg(unix)]
        {
            fs::File::open(path)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            Ok(())
        }
    }

    /// `fs::rename`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    /// `fs::remove_file`.
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    /// Consulted once per stream read/write round; `None` means proceed
    /// normally. The caller — not this trait — applies the fault, since
    /// only it owns the socket.
    fn stream_fault(&self, op: StreamOp) -> Option<StreamFault> {
        let _ = op;
        None
    }
}

/// The production passthrough: every operation is the real one.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

impl FaultIo for RealIo {}

/// Injection rates for a [`FaultPlan`]. Each field is "one fault per N
/// operations on average" for its class; `0` disables the class.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Short writes: `write_file` persists a truncated prefix and fails.
    pub short_write_every: u64,
    /// Transient faults: reads/writes/appends fail with
    /// [`io::ErrorKind::Interrupted`] without touching the file.
    pub transient_every: u64,
    /// Torn renames: the destination receives a truncated copy of the
    /// source, the source vanishes, and the rename reports failure —
    /// the on-disk picture after a crash mid-rename.
    pub torn_rename_every: u64,
    /// Stream faults on connection read/write rounds.
    pub stream_every: u64,
    /// Stall duration used for [`StreamFault::Stall`] injections.
    pub stall: Duration,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            short_write_every: 4,
            transient_every: 3,
            torn_rename_every: 5,
            stream_every: 4,
            stall: Duration::from_millis(40),
        }
    }
}

/// Deterministic seeded fault injector implementing [`FaultIo`].
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    config: FaultConfig,
    ops: AtomicU64,
    injected: AtomicU64,
}

const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mix.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(SPLITMIX_GAMMA);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// A plan injecting per `config` on a schedule derived from `seed`.
    pub fn new(seed: u64, config: FaultConfig) -> FaultPlan {
        FaultPlan {
            seed,
            config,
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Total faults injected so far, across every class.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Total operations observed (faulted or not).
    pub fn operations(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Draws the next op's hash; `class` salts the stream so e.g. the
    /// rename schedule is independent of the write schedule.
    fn draw(&self, class: u64) -> u64 {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        splitmix64(self.seed ^ op.wrapping_mul(SPLITMIX_GAMMA) ^ class)
    }

    fn hit(&self, hash: u64, every: u64) -> bool {
        if every == 0 {
            return false;
        }
        let hit = hash.is_multiple_of(every);
        if hit {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }
}

fn injected_err(kind: io::ErrorKind, what: &str) -> io::Error {
    io::Error::new(kind, format!("injected fault: {what}"))
}

impl FaultIo for FaultPlan {
    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        let hash = self.draw(0x11);
        if self.hit(hash, self.config.transient_every) {
            return Err(injected_err(io::ErrorKind::Interrupted, "transient read"));
        }
        fs::read(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let hash = self.draw(0x22);
        if self.hit(hash, self.config.transient_every) {
            return Err(injected_err(io::ErrorKind::Interrupted, "transient write"));
        }
        if self.hit(hash >> 8, self.config.short_write_every) {
            // Persist a torn prefix, then fail: the disk picture after a
            // crash mid-write.
            fs::write(path, &bytes[..bytes.len() / 2])?;
            return Err(injected_err(io::ErrorKind::Other, "short write"));
        }
        fs::write(path, bytes)
    }

    fn append_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let hash = self.draw(0x33);
        if self.hit(hash, self.config.transient_every) {
            return Err(injected_err(io::ErrorKind::Interrupted, "transient append"));
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        if self.hit(hash >> 8, self.config.short_write_every) {
            // A torn journal tail: half the record lands, then failure.
            file.write_all(&bytes[..bytes.len() / 2])?;
            return Err(injected_err(io::ErrorKind::Other, "short append"));
        }
        file.write_all(bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let hash = self.draw(0x44);
        if self.hit(hash, self.config.torn_rename_every) {
            // Crash mid-rename: destination holds a truncated copy, the
            // source is gone, and the caller sees failure.
            let bytes = fs::read(from)?;
            fs::write(to, &bytes[..bytes.len() / 2])?;
            fs::remove_file(from)?;
            return Err(injected_err(io::ErrorKind::Other, "torn rename"));
        }
        fs::rename(from, to)
    }

    fn stream_fault(&self, op: StreamOp) -> Option<StreamFault> {
        let class = match op {
            StreamOp::Read => 0x55,
            StreamOp::Write => 0x66,
        };
        let hash = self.draw(class);
        if !self.hit(hash, self.config.stream_every) {
            return None;
        }
        Some(match (hash >> 16) % 3 {
            0 => StreamFault::Transient,
            1 => StreamFault::Short((hash >> 32) as usize % 7 + 1),
            _ => StreamFault::Stall(self.config.stall),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_io_round_trips() {
        let dir = std::env::temp_dir().join(format!("charfree-faultio-{}", std::process::id()));
        let io = RealIo;
        io.create_dir_all(&dir).expect("mkdir");
        let path = dir.join("a.bin");
        io.write_file(&path, b"hello").expect("write");
        io.append_file(&path, b" world").expect("append");
        io.sync_file(&path).expect("sync file");
        io.sync_dir(&dir).expect("sync dir");
        assert_eq!(io.read_file(&path).expect("read"), b"hello world");
        let moved = dir.join("b.bin");
        io.rename(&path, &moved).expect("rename");
        io.remove_file(&moved).expect("remove");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn fault_plan_is_deterministic_per_seed() {
        let config = FaultConfig::default();
        let decisions = |seed: u64| -> Vec<Option<StreamFault>> {
            let plan = FaultPlan::new(seed, config);
            (0..256)
                .map(|_| plan.stream_fault(StreamOp::Read))
                .collect()
        };
        assert_eq!(decisions(7), decisions(7));
        assert_ne!(decisions(7), decisions(8));
    }

    #[test]
    fn fault_plan_injects_at_the_configured_rate() {
        let plan = FaultPlan::new(42, FaultConfig::default());
        for _ in 0..1000 {
            let _ = plan.stream_fault(StreamOp::Write);
        }
        let injected = plan.injected();
        // ~1 in 4 expected; allow a generous band.
        assert!((100..500).contains(&injected), "injected={injected}");
        assert_eq!(plan.operations(), 1000);
    }

    #[test]
    fn short_write_leaves_a_torn_prefix() {
        let dir = std::env::temp_dir().join(format!("charfree-shortw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("torn.bin");
        let plan = FaultPlan::new(
            9,
            FaultConfig {
                short_write_every: 1,
                transient_every: 0,
                torn_rename_every: 0,
                stream_every: 0,
                stall: Duration::ZERO,
            },
        );
        let err = plan.write_file(&path, b"0123456789").expect_err("injected");
        assert!(err.to_string().contains("injected"));
        assert_eq!(std::fs::read(&path).expect("read"), b"01234");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn torn_rename_truncates_destination_and_consumes_source() {
        let dir = std::env::temp_dir().join(format!("charfree-tornmv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let from = dir.join("src.bin");
        let to = dir.join("dst.bin");
        std::fs::write(&from, b"abcdefgh").expect("seed");
        let plan = FaultPlan::new(
            3,
            FaultConfig {
                short_write_every: 0,
                transient_every: 0,
                torn_rename_every: 1,
                stream_every: 0,
                stall: Duration::ZERO,
            },
        );
        plan.rename(&from, &to).expect_err("injected");
        assert!(!from.exists());
        assert_eq!(std::fs::read(&to).expect("read"), b"abcd");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
