//! Typed pipeline failures.

use charfree_core::BuildError;
use std::fmt;
use std::io;

/// Any failure along the pipeline, tagged with enough context to print a
/// one-line diagnostic.
#[derive(Debug)]
pub enum PipelineError {
    /// A netlist, library or artifact file could not be read or written.
    Io {
        /// The path involved.
        context: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A netlist, library or artifact file failed to parse or validate.
    Parse {
        /// The offending file.
        context: String,
        /// Parser diagnostic.
        message: String,
    },
    /// The operand names neither a file nor a known benchmark.
    UnknownInput(String),
    /// Model construction failed (invalid netlist, or a strict-mode
    /// budget trip).
    Build(BuildError),
    /// The requested operation is not defined for this input kind (e.g.
    /// expectations on a grouped-ordering kernel).
    Unsupported(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Io { context, source } => write!(f, "{context}: {source}"),
            PipelineError::Parse { context, message } => write!(f, "{context}: {message}"),
            PipelineError::UnknownInput(operand) => {
                write!(f, "`{operand}` is neither a file nor a known benchmark")
            }
            PipelineError::Build(e) => write!(f, "{e}"),
            PipelineError::Unsupported(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Io { source, .. } => Some(source),
            PipelineError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildError> for PipelineError {
    fn from(e: BuildError) -> Self {
        PipelineError::Build(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = PipelineError::Io {
            context: "x.blif".to_owned(),
            source: io::Error::new(io::ErrorKind::NotFound, "gone"),
        };
        assert!(e.to_string().contains("x.blif"));
        let e = PipelineError::UnknownInput("frob".to_owned());
        assert!(e.to_string().contains("frob"));
        let e = PipelineError::Parse {
            context: "y.v".to_owned(),
            message: "bad token".to_owned(),
        };
        assert!(e.to_string().contains("bad token"));
    }
}
