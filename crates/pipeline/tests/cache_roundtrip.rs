//! The artifact-store contract, end to end: a warm run performs **zero**
//! ADD apply steps (telemetry-verified) and produces bit-identical
//! evaluation results; poisoned cache entries degrade to rebuilds, never
//! panics.

use charfree_netlist::Library;
use charfree_pipeline::{ArtifactStore, Event, PipelineCtx, Source, Stage};
use std::fs;
use std::path::{Path, PathBuf};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("charfree-cache-rt-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Deterministic pattern sequence (no RNG dependency): bits of a 64-bit
/// LCG stream.
fn patterns(n_inputs: usize, count: usize) -> Vec<Vec<bool>> {
    let mut x: u64 = 0x243f_6a88_85a3_08d3;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        out.push((0..n_inputs).map(|b| x >> (b + 13) & 1 == 1).collect());
    }
    out
}

fn ctx_with_store(dir: &Path) -> PipelineCtx {
    PipelineCtx::new(Library::test_library()).with_store(ArtifactStore::new(dir))
}

fn artifact_paths(dir: &Path, ext: &str) -> Vec<PathBuf> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == ext))
        .collect();
    paths.sort();
    paths
}

#[test]
fn warm_run_does_zero_symbolic_work_and_is_bit_identical() {
    let dir = fresh_dir("warm");
    let source = Source::Bench("decod".to_owned());
    let pats = patterns(5, 64);

    // Cold run: builds, evaluates, populates the store.
    let mut cold = ctx_with_store(&dir);
    let kernel = cold.kernel_for(&source).expect("cold build");
    let cold_trace = cold.trace(&kernel, &pats, 1);
    assert!(cold.apply_steps() > 0, "a cold build does symbolic work");
    assert!(cold.telemetry.stage_ran(Stage::BuildAdd));
    assert!(cold.telemetry.cache_misses() >= 1);
    let stored = cold
        .telemetry
        .events()
        .iter()
        .filter(|e| matches!(e, Event::CacheStored { .. }))
        .count();
    assert_eq!(stored, 2, "model and kernel artifacts both stored");
    assert_eq!(artifact_paths(&dir, "cfm").len(), 1);
    assert_eq!(artifact_paths(&dir, "cfk").len(), 1);

    // Warm run in a fresh context: the kernel artifact short-circuits
    // the entire symbolic path.
    let mut warm = ctx_with_store(&dir);
    let warm_kernel = warm.kernel_for(&source).expect("warm load");
    let warm_trace = warm.trace(&warm_kernel, &pats, 2);
    assert_eq!(
        warm.apply_steps(),
        0,
        "a warm run performs zero ADD apply steps"
    );
    assert!(!warm.telemetry.stage_ran(Stage::BuildAdd));
    assert!(!warm.telemetry.stage_ran(Stage::Collapse));
    assert!(!warm.telemetry.stage_ran(Stage::CompileKernel));
    assert_eq!(warm.telemetry.cache_hits(), 1);
    assert_eq!(cold_trace.len(), warm_trace.len());
    for (c, w) in cold_trace.iter().zip(&warm_trace) {
        assert_eq!(c.to_bits(), w.to_bits(), "bit-identical evaluation");
    }

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn poisoned_kernel_falls_back_to_the_model_artifact() {
    let dir = fresh_dir("fallback");
    let source = Source::Bench("decod".to_owned());

    let mut cold = ctx_with_store(&dir);
    let _ = cold.kernel_for(&source).expect("cold build");

    // Corrupt the kernel artifact only; the model artifact stays valid.
    let kfiles = artifact_paths(&dir, "cfk");
    assert_eq!(kfiles.len(), 1);
    fs::write(&kfiles[0], b"charfree-kernel v1\ngarbage\n").expect("poison kernel");

    let mut warm = ctx_with_store(&dir);
    let _ = warm.kernel_for(&source).expect("fallback succeeds");
    assert_eq!(
        warm.apply_steps(),
        0,
        "the valid model artifact still avoids all symbolic work"
    );
    assert!(
        warm.telemetry
            .events()
            .iter()
            .any(|e| matches!(e, Event::CachePoisoned { .. })),
        "the bad kernel entry is reported, not fatal"
    );
    assert!(warm.telemetry.stage_ran(Stage::CompileKernel));
    assert!(!warm.telemetry.stage_ran(Stage::BuildAdd));
    // The recompiled kernel was stored back over the poisoned entry.
    let mut again = ctx_with_store(&dir);
    let _ = again.kernel_for(&source).expect("healed");
    assert_eq!(again.telemetry.cache_hits(), 1);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fully_poisoned_store_rebuilds_identically() {
    use charfree_pipeline::BuildOptions;

    let dir = fresh_dir("rebuild");
    let source = Source::Bench("cm85".to_owned());
    let pats = patterns(11, 32);
    let options = BuildOptions {
        max_nodes: Some(200),
        ..BuildOptions::default()
    };

    let mut cold = ctx_with_store(&dir).with_options(options.clone());
    let kernel = cold.kernel_for(&source).expect("cold build");
    let cold_trace = cold.trace(&kernel, &pats, 1);

    for path in artifact_paths(&dir, "cfm")
        .into_iter()
        .chain(artifact_paths(&dir, "cfk"))
    {
        fs::write(&path, b"\x00\xff half-written junk").expect("poison");
    }

    let mut rebuilt = ctx_with_store(&dir).with_options(options);
    let rb_kernel = rebuilt.kernel_for(&source).expect("rebuild succeeds");
    let rb_trace = rebuilt.trace(&rb_kernel, &pats, 1);
    assert!(rebuilt.apply_steps() > 0, "everything was rebuilt");
    assert!(rebuilt.telemetry.stage_ran(Stage::BuildAdd));
    assert_eq!(
        rebuilt
            .telemetry
            .events()
            .iter()
            .filter(|e| matches!(e, Event::CachePoisoned { .. }))
            .count(),
        2,
        "both bad entries reported"
    );
    for (c, r) in cold_trace.iter().zip(&rb_trace) {
        assert_eq!(c.to_bits(), r.to_bits(), "rebuild is bit-identical");
    }

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn uncacheable_options_bypass_the_store_entirely() {
    use charfree_pipeline::BuildOptions;
    use std::time::Duration;

    let dir = fresh_dir("bypass");
    let source = Source::Bench("decod".to_owned());
    let mut ctx = ctx_with_store(&dir).with_options(BuildOptions {
        time_budget: Some(Duration::from_secs(3600)),
        ..BuildOptions::default()
    });
    let _ = ctx.kernel_for(&source).expect("build succeeds");
    assert!(
        artifact_paths(&dir, "cfm").is_empty() && artifact_paths(&dir, "cfk").is_empty(),
        "nondeterministic builds are never cached"
    );
    assert_eq!(ctx.telemetry.cache_hits() + ctx.telemetry.cache_misses(), 0);

    let _ = fs::remove_dir_all(&dir);
}
