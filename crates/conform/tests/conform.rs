//! End-to-end exercises of the conformance harness itself: a bounded
//! differential sweep, a deliberately injected kernel off-by-one that
//! must be caught and minimized, and the committed regression corpus.

use std::path::PathBuf;

use charfree_conform::corpus::{load_corpus, Repro};
use charfree_conform::gen::{CircuitSpec, GenConfig};
use charfree_conform::oracle::{CaseParams, Oracle};
use charfree_conform::{case_spec, run, shrink, ConformConfig};
use charfree_core::ModelBuilder;
use charfree_engine::Kernel;
use charfree_netlist::{blif, Library};
use charfree_sim::{MarkovSource, ZeroDelaySim};

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("charfree-conform-it-{}-{tag}", std::process::id()))
}

fn committed_corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// A bounded sweep across every layer, live server included — the same
/// path `charfree conform` takes, sized for CI.
#[test]
fn bounded_sweep_passes_all_layers() {
    let dir = scratch("sweep");
    let config = ConformConfig {
        cases: 12,
        seed: 0xC0FFEE,
        vectors: 24,
        corpus: Some(committed_corpus_dir()),
        shrink: true,
        serve: true,
        campaigns: true,
        chaos: false,
        chaos_faults: 200,
        workdir: dir.clone(),
    };
    let report = run(&config).expect("all layers agree");
    assert!(report.contains("12 generated cases"), "report: {report}");
    assert!(report.contains("campaigns passed"), "report: {report}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance experiment: inject an off-by-one into the kernel
/// evaluation path (a shifted transition window — exactly what a
/// botched instruction index in the compiler would produce), confirm
/// the differential check catches it, and shrink the failing case to a
/// tiny repro.
#[test]
fn injected_kernel_off_by_one_is_caught_and_shrunk() {
    let library = Library::test_library();

    // The buggy layer: per-transition evaluation reads the window one
    // transition late (the last transition falls back to the diagonal).
    let buggy_trace = |kernel: &Kernel, patterns: &[Vec<bool>]| -> Vec<f64> {
        (0..patterns.len() - 1)
            .map(|t| {
                let xi = &patterns[(t + 1).min(patterns.len() - 1)];
                let xf = &patterns[(t + 2).min(patterns.len() - 1)];
                kernel.eval_transition(xi, xf)
            })
            .collect()
    };

    // Differential check: buggy kernel vs golden simulation.
    let diverges = |spec: &CircuitSpec, patterns: &[Vec<bool>]| -> bool {
        let Ok(netlist) = spec.build(&library) else {
            return false;
        };
        let sim = ZeroDelaySim::new(&netlist);
        let model = ModelBuilder::new(&netlist).build();
        let kernel = Kernel::compile(&model);
        let buggy = buggy_trace(&kernel, patterns);
        (0..patterns.len() - 1).any(|t| {
            let golden = sim
                .switching_capacitance(&patterns[t], &patterns[t + 1])
                .femtofarads();
            buggy[t].to_bits() != golden.to_bits()
        })
    };

    // A realistic starting point: a 24-gate random DAG and a Markov trace.
    let spec = CircuitSpec::random(
        "offbyone",
        41,
        &GenConfig {
            num_inputs: 7,
            num_gates: 24,
            window: 8,
        },
    );
    let mut source = MarkovSource::new(7, 0.5, 0.4, 17).expect("feasible");
    let patterns = source.sequence(40);
    assert!(
        diverges(&spec, &patterns),
        "the injected off-by-one must be caught on the full case"
    );

    let shrunk = shrink::shrink(&spec, &patterns, diverges);
    assert!(
        diverges(&shrunk.spec, &shrunk.patterns),
        "minimized case must still reproduce"
    );
    assert!(
        shrunk.spec.gates.len() <= 8,
        "repro must shrink to <= 8 gates, got {}",
        shrunk.spec.gates.len()
    );
    assert!(shrunk.patterns.len() <= 4, "trace must shrink too");

    // The minimized case round-trips through the corpus format and still
    // reproduces after reload — exactly what a committed repro must do.
    let netlist = shrunk.spec.build(&library).expect("valid");
    let repro = Repro {
        name: "offbyone".to_owned(),
        seed: 41,
        sp: 0.5,
        st: 0.4,
        blif: blif::write(&netlist),
        patterns: shrunk.patterns.clone(),
    };
    let dir = scratch("offbyone-corpus");
    let path = repro.write_to(&dir).expect("persists");
    let reloaded = load_corpus(&dir).expect("loads");
    assert_eq!(reloaded.len(), 1);
    let back = blif::parse(&reloaded[0].blif).expect("repro blif parses");
    let back_spec = netlist_as_spec(&back);
    assert!(
        diverges(&back_spec, &reloaded[0].patterns),
        "reloaded repro from {} must reproduce",
        path.display()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Lifts a parsed netlist back into a [`CircuitSpec`] (inputs first, gate
/// outputs in netlist order — the same id convention the generator uses).
fn netlist_as_spec(netlist: &charfree_netlist::Netlist) -> CircuitSpec {
    let mut id_of = std::collections::HashMap::new();
    for (i, &s) in netlist.inputs().iter().enumerate() {
        id_of.insert(s, i);
    }
    let mut gates = Vec::new();
    for (j, (_, gate)) in netlist.gates().enumerate() {
        id_of.insert(gate.output(), netlist.num_inputs() + j);
        gates.push(charfree_conform::gen::GateSpec {
            kind: gate.kind(),
            fanin: gate.inputs().iter().map(|s| id_of[s]).collect(),
        });
    }
    CircuitSpec {
        name: netlist.name().to_owned(),
        num_inputs: netlist.num_inputs(),
        gates,
    }
}

/// Every committed repro replays clean through the local oracle layers —
/// a once-found divergence can never silently return.
#[test]
fn committed_corpus_replays_clean() {
    let corpus = load_corpus(&committed_corpus_dir()).expect("corpus loads");
    assert!(
        !corpus.is_empty(),
        "the committed corpus must not be empty (see regenerate_committed_corpus)"
    );
    let dir = scratch("replay");
    let mut oracle = Oracle::new(&dir, false).expect("workdir");
    for repro in &corpus {
        oracle
            .check_text(
                &format!("corpus-{}", repro.name),
                &repro.blif,
                &repro.patterns,
            )
            .unwrap_or_else(|m| panic!("committed repro `{}` regressed: {m}", repro.name));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regenerates the committed corpus from fixed seeds. Run manually after
/// a deliberate format or generator change:
///
/// ```text
/// cargo test -p charfree-conform --test conform -- --ignored regenerate
/// ```
#[test]
#[ignore = "writes into the source tree; run explicitly to refresh the corpus"]
fn regenerate_committed_corpus() {
    let library = Library::test_library();
    let dir = committed_corpus_dir();
    // One representative of each family, small enough to replay fast.
    let picks: [(&str, CircuitSpec, u64); 3] = [
        ("dag", case_spec(0xC0FFEE, 0), 0xA5A5),
        ("adder", CircuitSpec::adder(2), 0xA5A6),
        ("parity", CircuitSpec::parity_tree(5), 0xA5A7),
    ];
    for (tag, spec, seed) in picks {
        let netlist = spec.build(&library).expect("valid");
        let mut source = MarkovSource::new(netlist.num_inputs(), 0.5, 0.4, seed).expect("feasible");
        let repro = Repro {
            name: format!("seed-{tag}"),
            seed,
            sp: 0.5,
            st: 0.4,
            blif: blif::write(&netlist),
            patterns: source.sequence(16),
        };
        repro.write_to(&dir).expect("persists");
    }
}

/// The oracle really does drive the live server: a sweep with serve
/// enabled answers identically to one without.
#[test]
fn serve_layer_round_trip_matches_local() {
    let dir = scratch("serve-layer");
    let mut oracle = Oracle::new(&dir, true).expect("workdir");
    let spec = case_spec(7, 3); // an adder
    let params = CaseParams {
        sp: 0.5,
        st: 0.4,
        seed: 99,
        vectors: 16,
    };
    let outcome = oracle
        .check_spec("serve-rt", &spec, &params)
        .expect("served values bit-equal local kernel");
    assert_eq!(outcome.transitions, 15);
    oracle.finish();
    let _ = std::fs::remove_dir_all(&dir);
}
