//! Seeded circuit generation: random DAGs over the cell library plus
//! structured families (ripple-carry adders, mux trees, parity trees).
//!
//! Circuits are generated as a [`CircuitSpec`] — a plain, shrinkable
//! description with integer signal ids — and only lowered to a
//! [`Netlist`] (and from there to BLIF text) at check time, so the real
//! parser is always in the loop and the shrinker can edit the spec
//! without touching netlist internals.

use charfree_netlist::{CellKind, Library, Netlist};

/// Deterministic splitmix64 stream — the harness must not depend on any
/// external RNG so that a corpus seed reproduces forever.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the stream.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One gate of a [`CircuitSpec`]. Fanin entries are signal ids: ids
/// `0..num_inputs` are primary inputs, id `num_inputs + j` is the output
/// of gate `j`. A gate may only reference earlier signals, so every spec
/// is a DAG by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateSpec {
    /// Library cell.
    pub kind: CellKind,
    /// Fanin signal ids (length = `kind.arity()`).
    pub fanin: Vec<usize>,
}

/// A shrinkable circuit description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitSpec {
    /// Model name (becomes the BLIF `.model` name).
    pub name: String,
    /// Primary-input count.
    pub num_inputs: usize,
    /// Gates in topological order.
    pub gates: Vec<GateSpec>,
}

/// Knobs for [`CircuitSpec::random`].
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Primary inputs.
    pub num_inputs: usize,
    /// Gate count.
    pub num_gates: usize,
    /// Fanin locality window: a gate draws fanin from the most recent
    /// `window` signals (keeps depth/width interesting instead of
    /// degenerating into a flat layer).
    pub window: usize,
}

/// The cell mix random DAGs draw from (every 1-, 2- and 3-input cell of
/// the library that the benchmark generators also use).
const CELLS: [CellKind; 10] = [
    CellKind::Nand2,
    CellKind::Nor2,
    CellKind::And2,
    CellKind::Or2,
    CellKind::Xor2,
    CellKind::Xnor2,
    CellKind::Inv,
    CellKind::Aoi21,
    CellKind::Oai21,
    CellKind::Mux2,
];

impl CircuitSpec {
    /// A seeded random DAG.
    pub fn random(name: impl Into<String>, seed: u64, cfg: &GenConfig) -> CircuitSpec {
        let mut rng = SplitMix64::new(seed);
        let mut gates = Vec::with_capacity(cfg.num_gates);
        for j in 0..cfg.num_gates {
            let kind = CELLS[rng.below(CELLS.len())];
            let avail = cfg.num_inputs + j;
            let lo = avail.saturating_sub(cfg.window.max(1));
            let mut fanin = Vec::with_capacity(kind.arity());
            for _ in 0..kind.arity() {
                // Prefer a distinct pin from the locality window; fall back
                // to anywhere earlier when the window is saturated.
                let mut pick = lo + rng.below(avail - lo);
                if fanin.contains(&pick) {
                    pick = rng.below(avail);
                }
                fanin.push(pick);
            }
            gates.push(GateSpec { kind, fanin });
        }
        CircuitSpec {
            name: name.into(),
            num_inputs: cfg.num_inputs,
            gates,
        }
    }

    /// A `width`-bit ripple-carry adder (half adder at bit 0, full adders
    /// above); sums and the final carry become primary outputs.
    pub fn adder(width: usize) -> CircuitSpec {
        let width = width.max(1);
        let num_inputs = 2 * width;
        let a = |i: usize| i;
        let b = |i: usize| width + i;
        let mut gates: Vec<GateSpec> = Vec::new();
        let push = |kind: CellKind, fanin: Vec<usize>, gates: &mut Vec<GateSpec>| -> usize {
            gates.push(GateSpec { kind, fanin });
            num_inputs + gates.len() - 1
        };
        // Bit 0: s0 = a0 ^ b0, carry = a0 & b0.
        let s0 = push(CellKind::Xor2, vec![a(0), b(0)], &mut gates);
        let mut carry = push(CellKind::And2, vec![a(0), b(0)], &mut gates);
        let _sum0 = s0;
        for i in 1..width {
            let x = push(CellKind::Xor2, vec![a(i), b(i)], &mut gates);
            let _s = push(CellKind::Xor2, vec![x, carry], &mut gates);
            let g = push(CellKind::And2, vec![a(i), b(i)], &mut gates);
            let p = push(CellKind::And2, vec![x, carry], &mut gates);
            carry = push(CellKind::Or2, vec![g, p], &mut gates);
        }
        CircuitSpec {
            name: format!("adder{width}"),
            num_inputs,
            gates,
        }
    }

    /// A `depth`-level binary mux tree: `2^depth` data inputs selected by
    /// `depth` select lines (Mux2 fanin order: select, then-branch,
    /// else-branch).
    pub fn mux_tree(depth: usize) -> CircuitSpec {
        let depth = depth.max(1);
        let data = 1usize << depth;
        let num_inputs = data + depth;
        let sel = |l: usize| data + l;
        let mut gates: Vec<GateSpec> = Vec::new();
        let mut level: Vec<usize> = (0..data).collect();
        for l in 0..depth {
            let mut next = Vec::with_capacity(level.len() / 2);
            for pair in level.chunks(2) {
                gates.push(GateSpec {
                    kind: CellKind::Mux2,
                    fanin: vec![sel(l), pair[0], pair[1]],
                });
                next.push(num_inputs + gates.len() - 1);
            }
            level = next;
        }
        CircuitSpec {
            name: format!("muxtree{depth}"),
            num_inputs,
            gates,
        }
    }

    /// A balanced XOR parity tree over `inputs` bits.
    pub fn parity_tree(inputs: usize) -> CircuitSpec {
        let inputs = inputs.max(2);
        let mut gates: Vec<GateSpec> = Vec::new();
        let mut level: Vec<usize> = (0..inputs).collect();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len() / 2 + 1);
            let mut it = level.chunks_exact(2);
            for pair in it.by_ref() {
                gates.push(GateSpec {
                    kind: CellKind::Xor2,
                    fanin: vec![pair[0], pair[1]],
                });
                next.push(inputs + gates.len() - 1);
            }
            next.extend(it.remainder().iter().copied());
            level = next;
        }
        CircuitSpec {
            name: format!("parity{inputs}"),
            num_inputs: inputs,
            gates,
        }
    }

    /// Lowers the spec into a validated, load-annotated [`Netlist`] —
    /// unconsumed gate outputs become primary outputs (the last gate is
    /// always unconsumed, so every spec has at least one output).
    ///
    /// # Errors
    ///
    /// Structural netlist errors (cannot happen for specs built by the
    /// constructors above; possible for hand-edited specs).
    pub fn build(&self, library: &Library) -> Result<Netlist, String> {
        let mut n = Netlist::new(self.name.clone());
        let mut sigs = Vec::with_capacity(self.num_inputs + self.gates.len());
        for i in 0..self.num_inputs {
            sigs.push(n.add_input(format!("i{i}")).map_err(|e| e.to_string())?);
        }
        for (j, g) in self.gates.iter().enumerate() {
            if g.fanin.len() != g.kind.arity() {
                return Err(format!("gate {j}: arity mismatch"));
            }
            let pins: Result<Vec<_>, String> = g
                .fanin
                .iter()
                .map(|&s| {
                    sigs.get(s)
                        .copied()
                        .ok_or_else(|| format!("gate {j}: forward reference to signal {s}"))
                })
                .collect();
            sigs.push(n.add_gate(g.kind, &pins?).map_err(|e| e.to_string())?);
        }
        let mut consumed = vec![false; sigs.len()];
        for g in &self.gates {
            for &s in &g.fanin {
                consumed[s] = true;
            }
        }
        for j in 0..self.gates.len() {
            let sig = self.num_inputs + j;
            if !consumed[sig] {
                n.mark_output(sigs[sig]).map_err(|e| e.to_string())?;
            }
        }
        n.annotate_loads(library);
        n.validate().map_err(|e| e.to_string())?;
        Ok(n)
    }

    /// Removes gate `j`, rewiring its consumers to the gate's first fanin
    /// signal. Signal ids above the removed output shift down by one.
    pub fn without_gate(&self, j: usize) -> CircuitSpec {
        let target = self.num_inputs + j;
        let replacement = self.gates[j].fanin[0];
        let remap = |s: usize| {
            let s = if s == target { replacement } else { s };
            if s > target {
                s - 1
            } else {
                s
            }
        };
        let gates = self
            .gates
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != j)
            .map(|(_, g)| GateSpec {
                kind: g.kind,
                fanin: g.fanin.iter().map(|&s| remap(s)).collect(),
            })
            .collect();
        CircuitSpec {
            name: self.name.clone(),
            num_inputs: self.num_inputs,
            gates,
        }
    }

    /// Removes primary input `i` (needs at least 2 inputs), rewiring its
    /// consumers to another input. Callers must drop bit `i` from every
    /// trace pattern to match.
    pub fn without_input(&self, i: usize) -> CircuitSpec {
        assert!(self.num_inputs >= 2, "cannot shrink below one input");
        let replacement = usize::from(i == 0);
        let remap = |s: usize| {
            let s = if s == i { replacement } else { s };
            if s > i {
                s - 1
            } else {
                s
            }
        };
        CircuitSpec {
            name: self.name.clone(),
            num_inputs: self.num_inputs - 1,
            gates: self
                .gates
                .iter()
                .map(|g| GateSpec {
                    kind: g.kind,
                    fanin: g.fanin.iter().map(|&s| remap(s)).collect(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_specs_build_and_validate() {
        let library = Library::test_library();
        for seed in 0..20u64 {
            let cfg = GenConfig {
                num_inputs: 4 + (seed as usize % 5),
                num_gates: 6 + (seed as usize % 20),
                window: 8,
            };
            let spec = CircuitSpec::random("t", seed, &cfg);
            let n = spec.build(&library).expect("valid spec");
            assert_eq!(n.num_inputs(), cfg.num_inputs);
            assert_eq!(n.num_gates(), cfg.num_gates);
            assert!(!n.outputs().is_empty());
        }
    }

    #[test]
    fn structured_families_have_expected_shape() {
        let library = Library::test_library();
        let add = CircuitSpec::adder(3).build(&library).expect("adder");
        assert_eq!(add.num_inputs(), 6);
        let mux = CircuitSpec::mux_tree(3).build(&library).expect("mux");
        assert_eq!(mux.num_inputs(), 11);
        assert_eq!(mux.outputs().len(), 1);
        let par = CircuitSpec::parity_tree(7).build(&library).expect("parity");
        assert_eq!(par.num_gates(), 6);
        assert_eq!(par.outputs().len(), 1);
    }

    #[test]
    fn shrink_ops_preserve_validity() {
        let library = Library::test_library();
        let cfg = GenConfig {
            num_inputs: 5,
            num_gates: 12,
            window: 6,
        };
        let mut spec = CircuitSpec::random("s", 7, &cfg);
        while !spec.gates.is_empty() {
            let j = spec.gates.len() - 1;
            spec = spec.without_gate(j);
            if !spec.gates.is_empty() {
                spec.build(&library)
                    .expect("still valid after gate removal");
            }
        }
        let mut spec = CircuitSpec::random("s", 9, &cfg);
        while spec.num_inputs > 1 {
            spec = spec.without_input(spec.num_inputs - 1);
            spec.build(&library)
                .expect("still valid after input removal");
        }
    }
}
