//! Persisted failing-case corpus.
//!
//! Every minimized repro is written as a self-contained text file
//! (netlist + trace + the generator seed and statistics that produced
//! it) under a corpus directory. Committed repros are replayed by the
//! test suite and by `charfree conform`, so a once-found divergence can
//! never silently come back.
//!
//! Format (`.repro`, line-oriented, `#` comments allowed):
//!
//! ```text
//! charfree-conform repro v1
//! name <case-name>
//! seed <hex>
//! sp <f64-bits-hex>
//! st <f64-bits-hex>
//! blif <line-count>
//! <BLIF text, exactly that many lines>
//! trace <patterns> <bits>
//! <one 0/1 string per pattern>
//! end
//! ```
//!
//! `sp`/`st` travel as IEEE-754 bit patterns for exact replay (the same
//! convention the serve wire protocol uses for capacitances).

use std::fs;
use std::path::{Path, PathBuf};

/// One replayable failing (or regression) case.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// Case name (also the file stem).
    pub name: String,
    /// Generator seed that produced the original case.
    pub seed: u64,
    /// Signal probability of the original trace.
    pub sp: f64,
    /// Transition probability of the original trace.
    pub st: f64,
    /// The (possibly minimized) circuit as BLIF text.
    pub blif: String,
    /// The (possibly minimized) explicit pattern trace.
    pub patterns: Vec<Vec<bool>>,
}

const HEADER: &str = "charfree-conform repro v1";

impl Repro {
    /// Serializes to the corpus text format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "name {}", self.name);
        let _ = writeln!(out, "seed {:#x}", self.seed);
        let _ = writeln!(out, "sp {:016x}", self.sp.to_bits());
        let _ = writeln!(out, "st {:016x}", self.st.to_bits());
        let blif_lines: Vec<&str> = self.blif.lines().collect();
        let _ = writeln!(out, "blif {}", blif_lines.len());
        for line in &blif_lines {
            let _ = writeln!(out, "{line}");
        }
        let width = self.patterns.first().map_or(0, Vec::len);
        let _ = writeln!(out, "trace {} {}", self.patterns.len(), width);
        for p in &self.patterns {
            for &b in p {
                out.push(if b { '1' } else { '0' });
            }
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }

    /// Parses the corpus text format.
    ///
    /// # Errors
    ///
    /// A diagnostic naming the offending line.
    pub fn from_text(text: &str) -> Result<Repro, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty repro file")?;
        if header.trim() != HEADER {
            return Err(format!("bad header `{header}`"));
        }
        let mut name = String::new();
        let mut seed = 0u64;
        let mut sp = 0.5f64;
        let mut st = 0.0f64;
        let mut blif = String::new();
        let mut patterns: Vec<Vec<bool>> = Vec::new();
        loop {
            let line = lines.next().ok_or("unterminated repro (missing `end`)")?;
            let line = line.trim_end();
            if line == "end" {
                break;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "name" => name = rest.trim().to_owned(),
                "seed" => {
                    let rest = rest.trim();
                    let digits = rest.strip_prefix("0x").unwrap_or(rest);
                    seed = u64::from_str_radix(digits, 16)
                        .map_err(|e| format!("bad seed `{rest}`: {e}"))?;
                }
                "sp" => {
                    sp = f64::from_bits(
                        u64::from_str_radix(rest.trim(), 16)
                            .map_err(|e| format!("bad sp `{rest}`: {e}"))?,
                    );
                }
                "st" => {
                    st = f64::from_bits(
                        u64::from_str_radix(rest.trim(), 16)
                            .map_err(|e| format!("bad st `{rest}`: {e}"))?,
                    );
                }
                "blif" => {
                    let count: usize = rest
                        .trim()
                        .parse()
                        .map_err(|e| format!("bad blif line count `{rest}`: {e}"))?;
                    for _ in 0..count {
                        let l = lines.next().ok_or("truncated blif block")?;
                        blif.push_str(l);
                        blif.push('\n');
                    }
                }
                "trace" => {
                    let mut parts = rest.split_whitespace();
                    let count: usize = parts
                        .next()
                        .ok_or("trace needs a pattern count")?
                        .parse()
                        .map_err(|e| format!("bad trace count: {e}"))?;
                    let width: usize = parts
                        .next()
                        .ok_or("trace needs a bit width")?
                        .parse()
                        .map_err(|e| format!("bad trace width: {e}"))?;
                    for _ in 0..count {
                        let l = lines.next().ok_or("truncated trace block")?.trim();
                        if l.len() != width {
                            return Err(format!(
                                "trace row `{l}` has {} bits, expected {width}",
                                l.len()
                            ));
                        }
                        let row: Result<Vec<bool>, String> = l
                            .chars()
                            .map(|c| match c {
                                '0' => Ok(false),
                                '1' => Ok(true),
                                other => Err(format!("bad trace bit `{other}`")),
                            })
                            .collect();
                        patterns.push(row?);
                    }
                }
                other => return Err(format!("unknown repro key `{other}`")),
            }
        }
        if blif.is_empty() {
            return Err("repro has no blif block".to_owned());
        }
        if patterns.len() < 2 {
            return Err("repro needs at least 2 trace patterns".to_owned());
        }
        Ok(Repro {
            name,
            seed,
            sp,
            st,
            blif,
            patterns,
        })
    }

    /// Writes the repro into `dir` as `<name>.repro` (directory created
    /// if missing), returning the path.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn write_to(&self, dir: &Path) -> Result<PathBuf, String> {
        fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        let path = dir.join(format!("{}.repro", self.name));
        fs::write(&path, self.to_text()).map_err(|e| format!("writing {}: {e}", path.display()))?;
        Ok(path)
    }
}

/// Loads every `.repro` file under `dir`, sorted by file name for a
/// deterministic replay order. A missing directory is an empty corpus.
///
/// # Errors
///
/// I/O failures and parse failures (naming the file).
pub fn load_corpus(dir: &Path) -> Result<Vec<Repro>, String> {
    let mut paths: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "repro"))
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("reading {}: {e}", dir.display())),
    };
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let repro = Repro::from_text(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push(repro);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repro_round_trips_exactly() {
        let repro = Repro {
            name: "rt".to_owned(),
            seed: 0xC0FFEE,
            sp: 0.4375,
            st: 0.3,
            blif: ".model rt\n.inputs a b\n.outputs _n2\n.gate xor2 a=a b=b O=_n2\n.end\n"
                .to_owned(),
            patterns: vec![vec![false, true], vec![true, true], vec![true, false]],
        };
        let back = Repro::from_text(&repro.to_text()).expect("parses");
        assert_eq!(back, repro);
        assert_eq!(back.st.to_bits(), repro.st.to_bits());
    }

    #[test]
    fn malformed_repros_are_typed_errors() {
        assert!(Repro::from_text("").is_err());
        assert!(Repro::from_text("wrong header\nend\n").is_err());
        let missing_end = format!("{HEADER}\nname x\n");
        assert!(Repro::from_text(&missing_end).is_err());
        let bad_bits = format!("{HEADER}\nblif 1\n.model x\ntrace 2 2\n0z\n11\nend\n");
        assert!(Repro::from_text(&bad_bits).is_err());
    }
}
