//! Fault-injection campaigns: the oracle's invariants under resource
//! pressure and storage corruption.
//!
//! Three attacks, all driven through the same generated circuits:
//!
//! 1. **Budget trips** (`trip_after`): a build that degrades at an
//!    arbitrary apply step must still produce a model the kernel
//!    reproduces bit for bit, and a degraded *upper-bound* model must
//!    stay pointwise conservative against the golden simulation.
//! 2. **Deadlines / non-determinism**: wall-clock-bounded and
//!    cancellable builds are not pure functions of their inputs, so
//!    they must never enter the artifact cache; degraded builds must
//!    not either.
//! 3. **Poisoned cache entries**: corrupted artifact files must be
//!    detected (typed [`Event::CachePoisoned`]), transparently rebuilt,
//!    and the healed answers must remain bit-identical to a storeless
//!    build.

use std::fs;
use std::path::{Path, PathBuf};

use charfree_core::{ApproxStrategy, ModelBuilder, PowerModel};
use charfree_engine::{Kernel, TraceEngine};
use charfree_netlist::{blif, Library};
use charfree_pipeline::{ArtifactStore, BuildOptions, Event, PipelineCtx, Source};
use charfree_sim::{MarkovSource, ZeroDelaySim};

use crate::gen::{CircuitSpec, GenConfig};

/// Summary of one campaign run (all counts are assertions that passed).
#[derive(Debug, Default)]
pub struct CampaignReport {
    /// Budget-trip points exercised.
    pub trips: usize,
    /// How many of those actually degraded the build.
    pub degraded: usize,
    /// Poisoned artifacts detected and healed.
    pub healed: usize,
}

/// Runs all three campaigns on circuits derived from `seed`, using
/// `workdir` for cache scratch space.
///
/// # Errors
///
/// The first violated invariant, as a diagnostic string.
pub fn run(seed: u64, workdir: &Path) -> Result<CampaignReport, String> {
    let library = Library::test_library();
    let cfg = GenConfig {
        num_inputs: 6,
        num_gates: 18,
        window: 8,
    };
    let spec = CircuitSpec::random("campaign", seed, &cfg);
    let netlist = spec.build(&library)?;
    let sim = ZeroDelaySim::new(&netlist);
    let mut source = MarkovSource::new(netlist.num_inputs(), 0.5, 0.4, seed ^ 0x5eed)
        .map_err(|e| e.to_string())?;
    let patterns = source.sequence(32);
    let mut report = CampaignReport::default();

    // Campaign 1: trip the budget at a ladder of apply steps.
    for k in [1u64, 3, 9, 27, 81, 243, 2000] {
        report.trips += 1;
        let model = ModelBuilder::new(&netlist)
            .trip_after(k)
            .try_build()
            .map_err(|e| format!("trip_after({k}) must degrade, not fail: {e}"))?;
        if model.degradation().is_some() {
            report.degraded += 1;
        }
        // The kernel must follow the degraded arena bit for bit.
        let kernel = Kernel::compile(&model);
        let trace = TraceEngine::new(&kernel).jobs(1).trace(&patterns);
        for (t, &got) in trace.iter().enumerate() {
            let want = model
                .capacitance(&patterns[t], &patterns[t + 1])
                .femtofarads();
            if got.to_bits() != want.to_bits() {
                return Err(format!(
                    "trip_after({k}): kernel {got} != degraded arena {want} at transition {t}"
                ));
            }
        }
        // A degraded upper-bound model keeps its one-sided contract.
        let upper = ModelBuilder::new(&netlist)
            .strategy(ApproxStrategy::UpperBound)
            .max_nodes((ModelBuilder::new(&netlist).build().size() / 2).max(4))
            .trip_after(k)
            .try_build()
            .map_err(|e| format!("upper-bound trip_after({k}) must degrade: {e}"))?;
        for t in 0..patterns.len() - 1 {
            let b = upper
                .capacitance(&patterns[t], &patterns[t + 1])
                .femtofarads();
            let truth = sim
                .switching_capacitance(&patterns[t], &patterns[t + 1])
                .femtofarads();
            if b < truth - 1e-9 {
                return Err(format!(
                    "trip_after({k}): degraded upper bound {b} < truth {truth} at transition {t}"
                ));
            }
        }
    }

    // Campaign 2: timing-dependent and degraded builds never cache.
    let blif_path = workdir.join("campaign.blif");
    fs::create_dir_all(workdir).map_err(|e| format!("creating {}: {e}", workdir.display()))?;
    fs::write(&blif_path, blif::write(&netlist)).map_err(|e| e.to_string())?;
    let source_ref = Source::infer(&blif_path.display().to_string());

    let deadline_options = BuildOptions {
        time_budget: Some(std::time::Duration::from_secs(3600)),
        ..BuildOptions::default()
    };
    if deadline_options.cacheable() {
        return Err("deadline-bounded options must not be cacheable".to_owned());
    }
    let deadline_cache = fresh_dir(workdir, "cache-deadline")?;
    {
        let mut ctx = PipelineCtx::new(library.clone())
            .with_options(deadline_options)
            .with_store(ArtifactStore::new(&deadline_cache));
        ctx.kernel_for(&source_ref).map_err(|e| e.to_string())?;
    }
    if count_artifacts(&deadline_cache) != 0 {
        return Err("deadline-bounded build left artifacts in the store".to_owned());
    }

    // node_budget=1 is guaranteed to trip: the degraded result must not
    // be persisted, so a second context builds cold again.
    let degraded_cache = fresh_dir(workdir, "cache-degraded")?;
    let degraded_options = BuildOptions {
        node_budget: Some(1),
        ..BuildOptions::default()
    };
    {
        let mut ctx = PipelineCtx::new(library.clone())
            .with_options(degraded_options.clone())
            .with_store(ArtifactStore::new(&degraded_cache));
        ctx.kernel_for(&source_ref).map_err(|e| e.to_string())?;
    }
    if count_artifacts(&degraded_cache) != 0 {
        return Err("degraded build left artifacts in the store".to_owned());
    }
    {
        let mut ctx = PipelineCtx::new(library.clone())
            .with_options(degraded_options)
            .with_store(ArtifactStore::new(&degraded_cache));
        ctx.kernel_for(&source_ref).map_err(|e| e.to_string())?;
        if ctx.apply_steps() == 0 {
            return Err("second degraded build was served warm; degraded \
                 results must never cache"
                .to_owned());
        }
    }

    // Campaign 3: poison every stored artifact byte pattern we can and
    // verify detection + bit-identical healing.
    let reference = {
        let mut ctx = PipelineCtx::new(library.clone());
        let kernel = ctx.kernel_for(&source_ref).map_err(|e| e.to_string())?;
        ctx.trace(&kernel, &patterns, 1)
    };
    for corruption in ["truncate", "garbage"] {
        let cache = fresh_dir(workdir, &format!("cache-poison-{corruption}"))?;
        {
            let mut ctx = PipelineCtx::new(library.clone()).with_store(ArtifactStore::new(&cache));
            ctx.kernel_for(&source_ref).map_err(|e| e.to_string())?;
        }
        let mut poisoned_files = 0usize;
        for entry in fs::read_dir(&cache).map_err(|e| e.to_string())? {
            let path = entry.map_err(|e| e.to_string())?.path();
            if !path.is_file() {
                continue;
            }
            match corruption {
                "truncate" => {
                    let bytes = fs::read(&path).map_err(|e| e.to_string())?;
                    fs::write(&path, &bytes[..bytes.len() / 2]).map_err(|e| e.to_string())?;
                }
                _ => {
                    fs::write(&path, b"not an artifact at all").map_err(|e| e.to_string())?;
                }
            }
            poisoned_files += 1;
        }
        if poisoned_files == 0 {
            return Err("warm build stored no artifacts to poison".to_owned());
        }
        let mut ctx = PipelineCtx::new(library.clone()).with_store(ArtifactStore::new(&cache));
        let kernel = ctx.kernel_for(&source_ref).map_err(|e| e.to_string())?;
        let healed = ctx.trace(&kernel, &patterns, 1);
        let saw_poison = ctx
            .telemetry
            .events()
            .iter()
            .any(|e| matches!(e, Event::CachePoisoned { .. }));
        if !saw_poison {
            return Err(format!(
                "{corruption}: corrupted artifact was not reported as poisoned"
            ));
        }
        for (t, (&got, &want)) in healed.iter().zip(&reference).enumerate() {
            if got.to_bits() != want.to_bits() {
                return Err(format!(
                    "{corruption}: healed trace {got} != reference {want} at transition {t}"
                ));
            }
        }
        report.healed += 1;
    }

    Ok(report)
}

fn fresh_dir(workdir: &Path, tag: &str) -> Result<PathBuf, String> {
    let dir = workdir.join(tag);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    Ok(dir)
}

fn count_artifacts(dir: &Path) -> usize {
    fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter(|e| e.path().is_file())
                .count()
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_passes_on_a_reference_seed() {
        let dir =
            std::env::temp_dir().join(format!("charfree-conform-campaign-{}", std::process::id()));
        let report = run(5, &dir).expect("invariants hold under faults");
        assert!(report.trips >= 7);
        assert!(report.degraded >= 1, "small trip points must degrade");
        assert_eq!(report.healed, 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
