//! The `chaos` campaign: crash-safety and self-healing under injected
//! I/O faults.
//!
//! Where [`crate::campaign`] attacks the *build* (budgets, deadlines,
//! poisoned bytes), this campaign attacks the *infrastructure* through
//! the [`FaultPlan`] injector — short writes, transient `EINTR`s, torn
//! renames, slow and stalled connections — and asserts the resilience
//! contract end to end:
//!
//! * **never a wrong answer** — every artifact load that validates, and
//!   every `Ok` server response, is bit-identical to a storeless cold
//!   build;
//! * **never a hang** — failures surface as typed, retriable responses
//!   (or bounded transport drops), and injected stalls are capped;
//! * **always recoverable** — after any fault ladder, one journal
//!   recovery pass quarantines every torn entry and the next store
//!   writes bytes identical to a clean cold write.
//!
//! Five phases:
//!
//! 1. **Store fault ladder** — seeded [`FaultPlan`]s drive
//!    store/load/recover cycles until the configured fault budget is
//!    spent; hits must be bit-exact, recovery must leave the store
//!    clean and byte-identical to the reference artifacts.
//! 2. **Torn store (`kill -9` picture)** — a half-written kernel plus a
//!    dangling journal `begin`; recovery must quarantine, report, and
//!    the rebuilt entry must heal byte-identically.
//! 3. **Live server under stream + store faults** — trace requests
//!    through [`Client::request_with_retries`]; completed responses are
//!    bit-compared against a local kernel, failures must be typed
//!    retriable.
//! 4. **Worker panic supervision** — poisoned jobs panic a batch
//!    worker; the supervisor restarts it and later jobs still complete
//!    bit-exactly.
//! 5. **Circuit breaker** — deterministic build failures trip a
//!    per-model breaker (`model-unavailable` + `retry_after_ms`),
//!    independent models keep serving, and the half-open probe heals
//!    the circuit once the cause is fixed.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::Duration;

use charfree_core::ModelBuilder;
use charfree_engine::{Kernel, TraceEngine};
use charfree_netlist::{blif, Library, Netlist};
use charfree_pipeline::{
    ArtifactKey, ArtifactKind, ArtifactStore, CacheLookup, FaultConfig, FaultIo, FaultPlan,
};
use charfree_serve::{
    BreakerConfig, ChannelReply, Client, Dispatcher, ErrorKind, Job, JobFault, Request, Response,
    RetryPolicy, ServeConfig, Server, ServerStats, WireBuildOptions, WireEvalParams,
};
use charfree_sim::MarkovSource;

use crate::gen::{CircuitSpec, GenConfig};

/// Tuning for one [`run`].
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Master seed; every fault plan and pattern stream derives from it.
    pub seed: u64,
    /// Minimum injected I/O faults the store ladder must accumulate
    /// before the campaign may pass (the CLI default is 200).
    pub fault_target: u64,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0xC4A0_5EED,
            fault_target: 200,
        }
    }
}

/// Summary of one chaos run (every count doubles as a passed assertion).
#[derive(Debug, Default)]
pub struct ChaosReport {
    /// I/O faults injected across every phase.
    pub injected_faults: u64,
    /// Bit-exactness comparisons that held (artifact loads + responses).
    pub bit_checks: u64,
    /// Journal recovery passes executed.
    pub recoveries: usize,
    /// Torn entries recovery moved to quarantine.
    pub quarantined: usize,
    /// Quarantined entries re-stored byte-identically to a clean write.
    pub torn_heals: usize,
    /// Server responses completed (and bit-verified) under stream faults.
    pub served_ok: usize,
    /// Typed retriable failures observed (never a hang, never garbage).
    pub typed_failures: usize,
    /// Worker panics caught and survived by the supervisor.
    pub worker_panics: u64,
    /// `model-unavailable` denials from a tripped circuit breaker.
    pub breaker_denials: usize,
}

/// Hard ceiling on ladder iterations, so a mis-tuned fault budget fails
/// loudly instead of looping.
const MAX_LADDER_ROUNDS: u64 = 10_000;

/// Runs every chaos phase on circuits derived from `config.seed`, using
/// `workdir` for scratch stores and case files.
///
/// # Errors
///
/// The first violated invariant, as a diagnostic string (always
/// reproducible from the seed).
pub fn run(config: &ChaosConfig, workdir: &Path) -> Result<ChaosReport, String> {
    fs::create_dir_all(workdir).map_err(|e| format!("creating {}: {e}", workdir.display()))?;
    let library = Library::test_library();
    let cfg = GenConfig {
        num_inputs: 5,
        num_gates: 14,
        window: 6,
    };
    let spec = CircuitSpec::random("chaos", config.seed, &cfg);
    let built = spec.build(&library)?;
    // Round-trip through BLIF so the campaign exercises exactly the
    // netlist the server will parse from disk.
    let text = blif::write(&built);
    let mut netlist = blif::parse(&text).map_err(|e| e.to_string())?;
    netlist.annotate_loads(&library);

    let model = ModelBuilder::new(&netlist).build();
    let kernel = Arc::new(Kernel::compile(&model));
    let mut clean_kernel_bytes = Vec::new();
    kernel
        .save(&mut clean_kernel_bytes)
        .map_err(|e| e.to_string())?;

    let patterns = markov(&netlist, config.seed ^ 0xC0DE, 24)?;
    let reference: Vec<u64> = trace_bits(&kernel, &patterns);

    let mut report = ChaosReport::default();
    store_fault_ladder(
        config,
        workdir,
        &model,
        &kernel,
        &clean_kernel_bytes,
        &reference,
        &patterns,
        &mut report,
    )?;
    torn_store_heals(workdir, &kernel, &clean_kernel_bytes, &mut report)?;
    serve_under_stream_faults(
        config,
        workdir,
        &library,
        &netlist,
        &text,
        &kernel,
        &mut report,
    )?;
    supervised_worker_panics(&kernel, &patterns, &reference, &mut report)?;
    breaker_trips_and_heals(
        config,
        workdir,
        &library,
        &netlist,
        &text,
        &kernel,
        &mut report,
    )?;

    // Silent shortfalls read as coverage; make them failures instead.
    if report.injected_faults < config.fault_target {
        return Err(format!(
            "chaos injected only {} faults (target {})",
            report.injected_faults, config.fault_target
        ));
    }
    Ok(report)
}

/// Phase 1: seeded fault ladders against the journaled store. Loads that
/// validate must be bit-exact; a real-I/O recovery pass after each rung
/// must quarantine anything torn and leave artifacts byte-identical to
/// the clean reference.
#[allow(clippy::too_many_arguments)]
fn store_fault_ladder(
    config: &ChaosConfig,
    workdir: &Path,
    model: &charfree_core::AddPowerModel,
    kernel: &Kernel,
    clean_kernel_bytes: &[u8],
    reference: &[u64],
    patterns: &[Vec<bool>],
    report: &mut ChaosReport,
) -> Result<(), String> {
    let dir = fresh_dir(workdir, "store-ladder")?;
    let model_key = ArtifactKey::derive(&["chaos-model"]);
    let kernel_key = ArtifactKey::derive(&["chaos-kernel"]);
    let reference_avg = model.average_capacitance().femtofarads().to_bits();

    let mut rung = 0u64;
    while report.injected_faults < config.fault_target {
        if rung >= MAX_LADDER_ROUNDS {
            return Err(format!(
                "fault ladder stalled at {} injected faults after {rung} rungs (target {})",
                report.injected_faults, config.fault_target
            ));
        }
        let plan = Arc::new(FaultPlan::new(
            config.seed ^ rung.wrapping_mul(0x9e37_79b9),
            FaultConfig::default(),
        ));
        let faulty = ArtifactStore::new(&dir).with_io(Arc::clone(&plan) as Arc<dyn FaultIo>);
        for _ in 0..6 {
            // Stores may fail (that is the point); the invariant is on
            // what a subsequent load is allowed to return.
            let _ = faulty.store_model(model_key, model);
            let _ = faulty.store_kernel(kernel_key, kernel);
            match faulty.load_kernel(kernel_key) {
                CacheLookup::Hit(loaded) => {
                    if trace_bits(&loaded, patterns) != reference {
                        return Err(format!(
                            "rung {rung}: a validated kernel load diverged from the reference"
                        ));
                    }
                    report.bit_checks += 1;
                }
                CacheLookup::Miss => {}
                CacheLookup::Poisoned(_) => report.typed_failures += 1,
            }
            match faulty.load_model(model_key) {
                CacheLookup::Hit(loaded) => {
                    if loaded.average_capacitance().femtofarads().to_bits() != reference_avg {
                        return Err(format!(
                            "rung {rung}: a validated model load diverged from the reference"
                        ));
                    }
                    report.bit_checks += 1;
                }
                CacheLookup::Miss => {}
                CacheLookup::Poisoned(_) => report.typed_failures += 1,
            }
        }
        report.injected_faults += plan.injected();

        // Recovery with real I/O: after it, loads are Hit-or-Miss (never
        // Poisoned — torn entries must be quarantined out from under the
        // key) and a re-store heals byte-identically.
        let real = ArtifactStore::new(&dir);
        let recovery = real
            .recover()
            .map_err(|e| format!("rung {rung}: recovery failed: {e}"))?;
        report.recoveries += 1;
        report.quarantined += recovery.quarantined.len();
        match real.load_kernel(kernel_key) {
            CacheLookup::Hit(_) => {}
            CacheLookup::Miss => real
                .store_kernel(kernel_key, kernel)
                .map_err(|e| format!("rung {rung}: clean re-store failed: {e}"))?,
            CacheLookup::Poisoned(reason) => {
                return Err(format!(
                    "rung {rung}: poisoned entry survived recovery: {reason}"
                ));
            }
        }
        let on_disk = fs::read(real.path(kernel_key, ArtifactKind::Kernel))
            .map_err(|e| format!("rung {rung}: reading healed kernel: {e}"))?;
        if on_disk != clean_kernel_bytes {
            return Err(format!(
                "rung {rung}: post-recovery artifact differs from a clean cold write"
            ));
        }
        report.bit_checks += 1;
        rung += 1;
    }

    // The final picture must be quiescent: a second pass finds nothing.
    let final_pass = ArtifactStore::new(&dir)
        .recover()
        .map_err(|e| format!("final recovery failed: {e}"))?;
    report.recoveries += 1;
    if !final_pass.is_clean() {
        return Err(format!(
            "store not clean after ladder + recovery: {}",
            final_pass.summary()
        ));
    }
    Ok(())
}

/// Phase 2: the on-disk picture of a `kill -9` mid-publish — a torn
/// artifact under a live key plus a dangling journal `begin`. Recovery
/// must quarantine the torn entry (typed, reported), the key must read
/// as a miss, and a rebuild must write bytes identical to a clean store.
fn torn_store_heals(
    workdir: &Path,
    kernel: &Kernel,
    clean_kernel_bytes: &[u8],
    report: &mut ChaosReport,
) -> Result<(), String> {
    let dir = fresh_dir(workdir, "torn-store")?;
    let store = ArtifactStore::new(&dir);
    let key = ArtifactKey::derive(&["chaos-torn"]);
    store
        .store_kernel(key, kernel)
        .map_err(|e| format!("clean store failed: {e}"))?;
    let path = store.path(key, ArtifactKind::Kernel);
    let bytes = fs::read(&path).map_err(|e| e.to_string())?;
    fs::write(&path, &bytes[..bytes.len() / 2]).map_err(|e| e.to_string())?;
    let mut journal = fs::OpenOptions::new()
        .append(true)
        .open(store.journal_path())
        .map_err(|e| e.to_string())?;
    journal
        .write_all(b"begin feedfacefeedfacefeedfacefeedface.cfk\n")
        .map_err(|e| e.to_string())?;
    drop(journal);

    let recovery = store.recover().map_err(|e| format!("recovery: {e}"))?;
    report.recoveries += 1;
    if recovery.quarantined.is_empty() {
        return Err("torn kernel was not quarantined".to_owned());
    }
    if recovery.aborted_writes == 0 {
        return Err("dangling `begin` was not reported as an aborted write".to_owned());
    }
    report.quarantined += recovery.quarantined.len();
    if !matches!(store.load_kernel(key), CacheLookup::Miss) {
        return Err("quarantined key still resolves".to_owned());
    }
    store
        .store_kernel(key, kernel)
        .map_err(|e| format!("rebuild store failed: {e}"))?;
    let healed = fs::read(&path).map_err(|e| e.to_string())?;
    if healed != clean_kernel_bytes {
        return Err("healed artifact differs from a clean cold write".to_owned());
    }
    report.bit_checks += 1;
    report.torn_heals += 1;
    Ok(())
}

/// Phase 3: a live server with the fault plan threaded through both its
/// artifact store and its connection read/write paths. Every completed
/// trace must be bit-identical to the local kernel; every failure must
/// be typed retriable or a reconnectable transport drop.
fn serve_under_stream_faults(
    config: &ChaosConfig,
    workdir: &Path,
    library: &Library,
    netlist: &Netlist,
    text: &str,
    kernel: &Kernel,
    report: &mut ChaosReport,
) -> Result<(), String> {
    let dir = fresh_dir(workdir, "serve")?;
    let blif_path = dir.join("chaos.blif");
    fs::write(&blif_path, text).map_err(|e| e.to_string())?;

    // References for the three eval seeds the request loop cycles.
    let mut references = Vec::new();
    for salt in 0..3u64 {
        let seed = config.seed ^ (0x100 + salt);
        let patterns = markov(netlist, seed, 16)?;
        references.push((seed, trace_bits(kernel, &patterns)));
    }

    let plan = Arc::new(FaultPlan::new(config.seed ^ 0xF00D, FaultConfig::default()));
    let mut serve_config = ServeConfig::new(library.clone());
    serve_config.addr = "127.0.0.1:0".to_owned();
    serve_config.log = false;
    serve_config.jobs = 2;
    serve_config.cache_dir = Some(dir.join("cache"));
    serve_config.fault_io = Some(Arc::clone(&plan) as Arc<dyn FaultIo>);
    let server = Server::start(serve_config).map_err(|e| format!("server start: {e}"))?;
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
    let policy = RetryPolicy {
        retries: 4,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(100),
        seed: config.seed,
    };

    let mut reconnects = 0usize;
    for i in 0..24usize {
        let (seed, want) = &references[i % references.len()];
        let request = Request::Trace {
            source: blif_path.display().to_string(),
            options: WireBuildOptions::default(),
            params: WireEvalParams {
                vectors: 16,
                sp: 0.5,
                st: 0.4,
                seed: *seed,
                deadline_ms: None,
            },
        };
        match client.request_with_retries(&request, &policy) {
            Ok(Response::Trace { values, .. }) => {
                let got: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
                if got != *want {
                    return Err(format!(
                        "request {i}: served trace diverged from the local kernel"
                    ));
                }
                report.bit_checks += 1;
                report.served_ok += 1;
            }
            Ok(Response::Error {
                kind,
                retry_after_ms,
                message,
            }) => {
                if !(kind.retriable() || retry_after_ms.is_some()) {
                    return Err(format!(
                        "request {i}: non-retriable failure under injected faults: {} {message}",
                        kind.name()
                    ));
                }
                report.typed_failures += 1;
            }
            Ok(other) => return Err(format!("request {i}: unexpected response {other:?}")),
            Err(e) => {
                // A dropped connection is an allowed (bounded) outcome;
                // garbage or a hang is not.
                reconnects += 1;
                if reconnects > 3 {
                    return Err(format!("request {i}: too many transport drops: {e}"));
                }
                report.typed_failures += 1;
                client = Client::connect(&addr).map_err(|e| format!("reconnect: {e}"))?;
            }
        }
    }
    if report.served_ok == 0 {
        return Err("no request completed under stream faults".to_owned());
    }
    let _ = client.request(&Request::Shutdown);
    server.wait();
    report.injected_faults += plan.injected();
    Ok(())
}

/// Phase 4: poisoned jobs panic the (single) batch worker; each panic
/// must surface to the submitter as a dropped reply, the supervisor must
/// restart the worker, and a healthy job right after must complete
/// bit-exactly.
fn supervised_worker_panics(
    kernel: &Arc<Kernel>,
    patterns: &[Vec<bool>],
    reference: &[u64],
    report: &mut ChaosReport,
) -> Result<(), String> {
    let stats = Arc::new(ServerStats::new());
    let dispatcher = Dispatcher::start(1, Duration::ZERO, 8, Arc::clone(&stats));
    for round in 0..3 {
        let (reply, rx) = sync_channel(1);
        let poison = Job {
            kernel: Arc::clone(kernel),
            patterns: patterns.to_vec(),
            want_values: true,
            deadline: None,
            reply: Box::new(ChannelReply(reply)),
            fault: Some(JobFault::PanicInWorker),
        };
        dispatcher
            .handle()
            .try_submit(poison)
            .map_err(|_| format!("round {round}: poison submit shed"))?;
        if rx.recv().is_ok() {
            return Err(format!("round {round}: poisoned job produced a result"));
        }
        let (reply, rx) = sync_channel(1);
        let healthy = Job {
            kernel: Arc::clone(kernel),
            patterns: patterns.to_vec(),
            want_values: true,
            deadline: None,
            reply: Box::new(ChannelReply(reply)),
            fault: None,
        };
        dispatcher
            .handle()
            .try_submit(healthy)
            .map_err(|_| format!("round {round}: healthy submit shed"))?;
        let output = rx
            .recv()
            .map_err(|_| format!("round {round}: healthy job lost after restart"))?
            .map_err(|e| format!("round {round}: healthy job failed: {e:?}"))?;
        let got: Vec<u64> = output
            .values
            .unwrap_or_default()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        if got != reference {
            return Err(format!(
                "round {round}: post-restart evaluation diverged from the reference"
            ));
        }
        report.bit_checks += 1;
    }
    dispatcher.shutdown();
    report.worker_panics = stats.worker_panics();
    if report.worker_panics != 3 {
        return Err(format!(
            "expected 3 supervised panics, stats saw {}",
            report.worker_panics
        ));
    }
    Ok(())
}

/// Phase 5: repeated deterministic build failures trip the per-model
/// circuit breaker; denials are typed `model-unavailable` with a
/// `retry_after_ms`, an unrelated model keeps serving, and once the
/// cause is fixed the half-open probe closes the circuit and answers
/// bit-exactly.
fn breaker_trips_and_heals(
    config: &ChaosConfig,
    workdir: &Path,
    library: &Library,
    netlist: &Netlist,
    text: &str,
    kernel: &Kernel,
    report: &mut ChaosReport,
) -> Result<(), String> {
    let dir = fresh_dir(workdir, "breaker")?;
    let late_path = dir.join("late.blif");

    let mut serve_config = ServeConfig::new(library.clone());
    serve_config.addr = "127.0.0.1:0".to_owned();
    serve_config.log = false;
    serve_config.jobs = 1;
    serve_config.breaker = BreakerConfig {
        failure_threshold: 2,
        open_base: Duration::from_millis(150),
        open_cap: Duration::from_secs(2),
    };
    let server = Server::start(serve_config).map_err(|e| format!("server start: {e}"))?;
    let mut client =
        Client::connect(&server.addr().to_string()).map_err(|e| format!("connect: {e}"))?;

    let eval_seed = config.seed ^ 0xB4EA;
    let trace_request = |source: String| Request::Trace {
        source,
        options: WireBuildOptions::default(),
        params: WireEvalParams {
            vectors: 12,
            sp: 0.5,
            st: 0.4,
            seed: eval_seed,
            deadline_ms: None,
        },
    };

    // Two deterministic failures (the netlist file does not exist yet).
    for attempt in 0..2 {
        match client
            .request(&trace_request(late_path.display().to_string()))
            .map_err(|e| format!("attempt {attempt}: {e}"))?
        {
            Response::Error { kind, .. } if !matches!(kind, ErrorKind::ModelUnavailable) => {}
            other => {
                return Err(format!(
                    "attempt {attempt}: expected a deterministic build failure, got {other:?}"
                ));
            }
        }
    }
    // Third request: the breaker is open; the failure is shed *typed*.
    match client
        .request(&trace_request(late_path.display().to_string()))
        .map_err(|e| e.to_string())?
    {
        Response::Error {
            kind: ErrorKind::ModelUnavailable,
            retry_after_ms: Some(ms),
            ..
        } => {
            if ms == 0 {
                return Err("breaker denial carried retry_after_ms=0".to_owned());
            }
            report.breaker_denials += 1;
            report.typed_failures += 1;
        }
        other => return Err(format!("expected model-unavailable, got {other:?}")),
    }
    // An independent healthy model is unaffected by the open circuit.
    match client
        .request(&trace_request("decod".to_owned()))
        .map_err(|e| e.to_string())?
    {
        Response::Trace { values, .. } if !values.is_empty() => {}
        other => {
            return Err(format!(
                "healthy model failed while circuit open: {other:?}"
            ))
        }
    }
    // Fix the cause, then let the retrying client ride the breaker's
    // retry_after_ms hint through the half-open probe to a bit-exact
    // answer.
    fs::write(&late_path, text).map_err(|e| e.to_string())?;
    let patterns = markov(netlist, eval_seed, 12)?;
    let want = trace_bits(kernel, &patterns);
    let policy = RetryPolicy {
        retries: 8,
        base: Duration::from_millis(25),
        cap: Duration::from_millis(500),
        seed: config.seed,
    };
    match client
        .request_with_retries(&trace_request(late_path.display().to_string()), &policy)
        .map_err(|e| format!("healed request: {e}"))?
    {
        Response::Trace { values, .. } => {
            let got: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
            if got != want {
                return Err("post-heal trace diverged from the local kernel".to_owned());
            }
            report.bit_checks += 1;
        }
        other => return Err(format!("circuit did not heal: {other:?}")),
    }
    let _ = client.request(&Request::Shutdown);
    server.wait();
    Ok(())
}

fn markov(netlist: &Netlist, seed: u64, vectors: usize) -> Result<Vec<Vec<bool>>, String> {
    let mut source =
        MarkovSource::new(netlist.num_inputs(), 0.5, 0.4, seed).map_err(|e| e.to_string())?;
    Ok(source.sequence(vectors))
}

fn trace_bits(kernel: &Kernel, patterns: &[Vec<bool>]) -> Vec<u64> {
    TraceEngine::new(kernel)
        .jobs(1)
        .trace(patterns)
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

fn fresh_dir(workdir: &Path, tag: &str) -> Result<PathBuf, String> {
    let dir = workdir.join(tag);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_campaign_passes_on_a_reference_seed() {
        let dir = std::env::temp_dir().join(format!("charfree-chaos-{}", std::process::id()));
        let config = ChaosConfig {
            seed: 11,
            fault_target: 40,
        };
        let report = run(&config, &dir).expect("resilience invariants hold under chaos");
        assert!(report.injected_faults >= 40, "{report:?}");
        assert!(report.bit_checks > 0, "{report:?}");
        assert!(report.recoveries >= 2, "{report:?}");
        assert_eq!(report.torn_heals, 1, "{report:?}");
        assert!(report.served_ok >= 1, "{report:?}");
        assert_eq!(report.worker_panics, 3, "{report:?}");
        assert!(report.breaker_denials >= 1, "{report:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
