//! The differential oracle: one circuit, one pattern trace, every stack
//! layer — all answers bit-compared.
//!
//! Layer lattice (everything below the first row must agree **bit for
//! bit**; the bracket rows are one-sided):
//!
//! ```text
//! golden zero-delay sim  ≡  exact ADD walk  ≡  kernel (scalar, 1 job,
//!     N jobs)  ≡  pipeline cold build  ≡  pipeline warm reload
//!     ≡  charfree-serve trace round trip
//! unit-delay switched    ≥  golden zero-delay   (glitches only add)
//! upper-bound collapse   ≥  golden, pointwise
//! average collapse       ≈  golden global average (paper-plain config,
//!                           terminal-quantization tolerance)
//! ```

use std::fs;
use std::path::PathBuf;

use charfree_core::{ApproxStrategy, ModelBuilder, PowerModel};
use charfree_engine::{Kernel, TraceEngine};
use charfree_netlist::{blif, Library, Netlist};
use charfree_pipeline::{ArtifactStore, PipelineCtx, Source};
use charfree_serve::{
    Client, Proto, Request, Response, ServeConfig, Server, WireBuildOptions, WireEvalParams,
};
use charfree_sim::{MarkovSource, UnitDelaySim, ZeroDelaySim};

use crate::gen::CircuitSpec;

/// Slack for one-sided float comparisons (dominance and upper bounds are
/// mathematically exact; the slack only absorbs summation-order noise).
const SLACK_FF: f64 = 1e-9;

/// A layer disagreement, with enough detail to debug without rerunning.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Which oracle layer diverged.
    pub layer: &'static str,
    /// Human-readable diagnostics (transition index, both values, ...).
    pub detail: String,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.layer, self.detail)
    }
}

fn mismatch(layer: &'static str, detail: impl Into<String>) -> Mismatch {
    Mismatch {
        layer,
        detail: detail.into(),
    }
}

/// Markov pattern-stream parameters for one case.
#[derive(Debug, Clone, Copy)]
pub struct CaseParams {
    /// Signal probability (`0 < sp < 1`).
    pub sp: f64,
    /// Transition probability (`0 ≤ st ≤ 2·min(sp, 1−sp)`).
    pub st: f64,
    /// Markov-source seed.
    pub seed: u64,
    /// Sequence length (at least 2 patterns are generated).
    pub vectors: usize,
}

/// What a successful full-stack check observed (fed back into the run
/// report and reused by the serve layer).
#[derive(Debug)]
pub struct CheckOutcome {
    /// Transitions compared per layer.
    pub transitions: usize,
    /// The agreed per-transition kernel trace, in femtofarads.
    pub kernel_trace: Vec<f64>,
}

/// The cross-layer differential oracle. Owns a scratch directory (case
/// netlist files + the pipeline artifact store) and, lazily, one live
/// in-process `charfree-serve` instance reused across cases.
pub struct Oracle {
    library: Library,
    workdir: PathBuf,
    with_serve: bool,
    /// One live server plus a JSON and a binary client against it, so
    /// every case round-trips through *both* wire protocols.
    serve: Option<(Server, Client, Client)>,
    /// Cases checked so far (also salts case file names).
    pub cases: usize,
    /// Transitions bit-compared so far, summed over cases and layers.
    pub transitions: u64,
}

impl std::fmt::Debug for Oracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Oracle")
            .field("workdir", &self.workdir)
            .field("with_serve", &self.with_serve)
            .field("cases", &self.cases)
            .finish()
    }
}

impl Oracle {
    /// Creates an oracle with scratch state under `workdir` (created if
    /// missing). `with_serve` additionally routes every case through a
    /// live server round trip.
    ///
    /// # Errors
    ///
    /// Scratch-directory I/O failures.
    pub fn new(workdir: impl Into<PathBuf>, with_serve: bool) -> Result<Oracle, String> {
        let workdir = workdir.into();
        fs::create_dir_all(workdir.join("cases"))
            .map_err(|e| format!("creating {}: {e}", workdir.display()))?;
        Ok(Oracle {
            library: Library::test_library(),
            workdir,
            with_serve,
            serve: None,
            cases: 0,
            transitions: 0,
        })
    }

    /// The cell library every layer builds against.
    pub fn library(&self) -> &Library {
        &self.library
    }

    fn cache_dir(&self) -> PathBuf {
        self.workdir.join("cache")
    }

    fn case_path(&self, name: &str) -> PathBuf {
        self.workdir.join("cases").join(format!("{name}.blif"))
    }

    fn clients(&mut self) -> Result<(&mut Client, &mut Client), String> {
        if self.serve.is_none() {
            let mut config = ServeConfig::new(self.library.clone());
            config.addr = "127.0.0.1:0".to_owned();
            config.log = false;
            config.jobs = 2;
            config.cache_dir = Some(self.workdir.join("serve-cache"));
            let server = Server::start(config).map_err(|e| format!("server start: {e}"))?;
            let addr = server.addr().to_string();
            let json =
                Client::connect_with(&addr, Proto::Json).map_err(|e| format!("connect: {e}"))?;
            let binary = Client::connect_with(&addr, Proto::Binary)
                .map_err(|e| format!("binary connect: {e}"))?;
            self.serve = Some((server, json, binary));
        }
        match &mut self.serve {
            Some((_, json, binary)) => Ok((json, binary)),
            None => Err("server unavailable".to_owned()),
        }
    }

    /// Drains the live server (if one was started). Call at the end of a
    /// run; dropping without finishing leaks the server threads until
    /// process exit, which is harmless for one-shot CLI runs.
    pub fn finish(mut self) {
        if let Some((server, mut client, binary)) = self.serve.take() {
            drop(binary);
            let _ = client.request(&Request::Shutdown);
            server.wait();
        }
    }

    /// Generates the Markov pattern trace for `spec` under `params` —
    /// exactly the sequence the server regenerates for the same
    /// `(vectors, sp, st, seed)`, which is what makes the serve layer
    /// bit-comparable.
    pub fn patterns_for(
        &self,
        spec: &CircuitSpec,
        params: &CaseParams,
    ) -> Result<Vec<Vec<bool>>, String> {
        let mut source = MarkovSource::new(spec.num_inputs, params.sp, params.st, params.seed)
            .map_err(|e| e.to_string())?;
        Ok(source.sequence(params.vectors.max(2)))
    }

    /// Full check of one generated spec: all local layers plus (when
    /// enabled) the live-server round trip.
    ///
    /// # Errors
    ///
    /// The first layer mismatch found.
    pub fn check_spec(
        &mut self,
        case_name: &str,
        spec: &CircuitSpec,
        params: &CaseParams,
    ) -> Result<CheckOutcome, Mismatch> {
        let netlist = spec
            .build(&self.library)
            .map_err(|e| mismatch("spec-build", e))?;
        let text = blif::write(&netlist);
        let patterns = self
            .patterns_for(spec, params)
            .map_err(|e| mismatch("params", e))?;
        let outcome = self.check_text(case_name, &text, &patterns)?;
        if self.with_serve {
            self.check_serve(case_name, params, &patterns, &outcome)?;
        }
        Ok(outcome)
    }

    /// Local-layer check of a circuit given directly as netlist text and
    /// an explicit pattern trace (the entry point shrinking and corpus
    /// replay use — explicit patterns cannot be replayed through the
    /// server, which generates its own from a seed).
    ///
    /// # Errors
    ///
    /// The first layer mismatch found.
    pub fn check_text(
        &mut self,
        case_name: &str,
        text: &str,
        patterns: &[Vec<bool>],
    ) -> Result<CheckOutcome, Mismatch> {
        // Layer 0: the real parser is in the loop.
        let mut netlist =
            blif::parse(text).map_err(|e| mismatch("parse", format!("{case_name}: {e}")))?;
        netlist.annotate_loads(&self.library);
        if patterns.len() < 2 {
            return Err(mismatch("params", "need at least 2 patterns"));
        }
        for (i, p) in patterns.iter().enumerate() {
            if p.len() != netlist.num_inputs() {
                return Err(mismatch(
                    "params",
                    format!(
                        "pattern {i} has {} bits, circuit has {} inputs",
                        p.len(),
                        netlist.num_inputs()
                    ),
                ));
            }
        }
        let transitions = patterns.len() - 1;

        // Layer 1: golden zero-delay gate-level simulation (Eqs. 2-3).
        let sim = ZeroDelaySim::new(&netlist);
        let golden: Vec<f64> = (0..transitions)
            .map(|t| {
                sim.switching_capacitance(&patterns[t], &patterns[t + 1])
                    .femtofarads()
            })
            .collect();

        // Layer 2: the exact uncollapsed ADD walk (Eq. 4) must reproduce
        // the golden model bit for bit.
        let model = ModelBuilder::new(&netlist).build();
        if !model.report().exact {
            return Err(mismatch(
                "exact-build",
                format!("{case_name}: unconstrained build was not exact"),
            ));
        }
        for t in 0..transitions {
            let add = model
                .capacitance(&patterns[t], &patterns[t + 1])
                .femtofarads();
            if add.to_bits() != golden[t].to_bits() {
                return Err(mismatch(
                    "add-vs-golden",
                    format!(
                        "{case_name}: transition {t}: ADD {add} vs golden {}",
                        golden[t]
                    ),
                ));
            }
        }

        // Layer 3: the compiled kernel — scalar walk, then batched traces
        // with 1 and 4 workers (jobs-invariance included).
        let kernel = Kernel::compile(&model);
        for t in 0..transitions {
            let scalar = kernel.eval_transition(&patterns[t], &patterns[t + 1]);
            if scalar.to_bits() != golden[t].to_bits() {
                return Err(mismatch(
                    "kernel-scalar",
                    format!(
                        "{case_name}: transition {t}: kernel {scalar} vs golden {}",
                        golden[t]
                    ),
                ));
            }
        }
        let trace1 = TraceEngine::new(&kernel).jobs(1).trace(patterns);
        let trace4 = TraceEngine::new(&kernel).jobs(4).trace(patterns);
        for t in 0..transitions {
            if trace1[t].to_bits() != golden[t].to_bits() {
                return Err(mismatch(
                    "kernel-batch",
                    format!(
                        "{case_name}: transition {t}: batch {} vs golden {}",
                        trace1[t], golden[t]
                    ),
                ));
            }
            if trace4[t].to_bits() != trace1[t].to_bits() {
                return Err(mismatch(
                    "kernel-jobs",
                    format!(
                        "{case_name}: transition {t}: jobs=4 {} vs jobs=1 {}",
                        trace4[t], trace1[t]
                    ),
                ));
            }
        }

        // Layer 4: the staged pipeline, cold then warm through the
        // content-addressed store — the warm reload must do zero symbolic
        // work and still answer identically.
        self.check_pipeline(case_name, text, patterns, &golden)?;

        // Layer 5: unit-delay dominance — real (glitchy) switching can
        // only add capacitance on top of the zero-delay functional part.
        let unit = UnitDelaySim::new(&netlist);
        for t in 0..transitions {
            let report = unit
                .try_simulate_transition(&patterns[t], &patterns[t + 1])
                .map_err(|e| mismatch("unit-delay", format!("{case_name}: transition {t}: {e}")))?;
            if report.switched.femtofarads() < golden[t] - SLACK_FF {
                return Err(mismatch(
                    "unit-delay",
                    format!(
                        "{case_name}: transition {t}: unit-delay {} < zero-delay {}",
                        report.switched.femtofarads(),
                        golden[t]
                    ),
                ));
            }
            if report.glitch.femtofarads() < -SLACK_FF {
                return Err(mismatch(
                    "unit-delay",
                    format!(
                        "{case_name}: transition {t}: negative glitch {}",
                        report.glitch.femtofarads()
                    ),
                ));
            }
        }

        // Bracket layers: collapsed models around the exact answer.
        self.check_brackets(case_name, &netlist, &model, patterns, &golden)?;

        self.cases += 1;
        self.transitions += transitions as u64;
        Ok(CheckOutcome {
            transitions,
            kernel_trace: trace1,
        })
    }

    fn check_pipeline(
        &mut self,
        case_name: &str,
        text: &str,
        patterns: &[Vec<bool>],
        golden: &[f64],
    ) -> Result<(), Mismatch> {
        let path = self.case_path(case_name);
        fs::write(&path, text)
            .map_err(|e| mismatch("pipeline-cold", format!("{}: {e}", path.display())))?;
        let source = Source::infer(&path.display().to_string());

        let cold_trace = {
            let mut ctx = PipelineCtx::new(self.library.clone())
                .with_store(ArtifactStore::new(self.cache_dir()));
            let kernel = ctx
                .kernel_for(&source)
                .map_err(|e| mismatch("pipeline-cold", format!("{case_name}: {e}")))?;
            ctx.trace(&kernel, patterns, 1)
        };
        for (t, (&got, &want)) in cold_trace.iter().zip(golden).enumerate() {
            if got.to_bits() != want.to_bits() {
                return Err(mismatch(
                    "pipeline-cold",
                    format!("{case_name}: transition {t}: pipeline {got} vs golden {want}"),
                ));
            }
        }

        // A fresh context over the same store must reload without a
        // single ADD apply step, bit-identically.
        let mut warm =
            PipelineCtx::new(self.library.clone()).with_store(ArtifactStore::new(self.cache_dir()));
        let kernel = warm
            .kernel_for(&source)
            .map_err(|e| mismatch("pipeline-warm", format!("{case_name}: {e}")))?;
        if warm.apply_steps() != 0 {
            return Err(mismatch(
                "pipeline-warm",
                format!(
                    "{case_name}: warm reload performed {} apply steps (expected 0)",
                    warm.apply_steps()
                ),
            ));
        }
        let warm_trace = warm.trace(&kernel, patterns, 1);
        for (t, (&got, &want)) in warm_trace.iter().zip(golden).enumerate() {
            if got.to_bits() != want.to_bits() {
                return Err(mismatch(
                    "pipeline-warm",
                    format!("{case_name}: transition {t}: warm {got} vs golden {want}"),
                ));
            }
        }
        Ok(())
    }

    fn check_brackets(
        &self,
        case_name: &str,
        netlist: &Netlist,
        exact: &charfree_core::AddPowerModel,
        patterns: &[Vec<bool>],
        golden: &[f64],
    ) -> Result<(), Mismatch> {
        let total_ff = netlist.total_load().femtofarads();
        let budget = (exact.size() / 2).max(4);

        // Upper-bound collapse: pointwise conservative, physically sane.
        let upper = ModelBuilder::new(netlist)
            .max_nodes(budget)
            .strategy(ApproxStrategy::UpperBound)
            .build();
        for t in 0..golden.len() {
            let b = upper
                .capacitance(&patterns[t], &patterns[t + 1])
                .femtofarads();
            if b < golden[t] - SLACK_FF {
                return Err(mismatch(
                    "bracket-upper",
                    format!(
                        "{case_name}: transition {t}: upper bound {b} < exact {}",
                        golden[t]
                    ),
                ));
            }
        }

        // Average collapse in the paper-plain configuration preserves the
        // global average up to the builder's terminal-quantization grid
        // (Section 3.1 invariant; same tolerance the property suite uses).
        let avg = ModelBuilder::new(netlist)
            .max_nodes(budget)
            .collapse_toggles(&[0.5])
            .leaf_recalibration(false)
            .diagonal_gating(false)
            .build();
        let tolerance = total_ff / 8192.0;
        let delta = (avg.average_capacitance().femtofarads()
            - exact.average_capacitance().femtofarads())
        .abs();
        if delta > tolerance {
            return Err(mismatch(
                "bracket-average",
                format!(
                    "{case_name}: collapsed average drifted by {delta} fF (tolerance {tolerance})"
                ),
            ));
        }

        // Any collapsed prediction stays within physical limits.
        for t in 0..golden.len() {
            let c = avg
                .capacitance(&patterns[t], &patterns[t + 1])
                .femtofarads();
            if !(0.0..=total_ff + SLACK_FF).contains(&c) {
                return Err(mismatch(
                    "physical-range",
                    format!(
                        "{case_name}: transition {t}: collapsed prediction {c} outside [0, {total_ff}]"
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Live-server layer: the same case answered over the JSON line
    /// protocol, over the binary frame protocol, and over a binary
    /// explicit-pattern trace — all three must match the local kernel
    /// trace **bit for bit** (the "binary ≡ JSON" invariant on the wire).
    fn check_serve(
        &mut self,
        case_name: &str,
        params: &CaseParams,
        patterns: &[Vec<bool>],
        outcome: &CheckOutcome,
    ) -> Result<(), Mismatch> {
        let path = self.case_path(case_name).display().to_string();
        let seeded = Request::Trace {
            source: path.clone(),
            options: WireBuildOptions::default(),
            params: WireEvalParams {
                vectors: params.vectors.max(2),
                sp: params.sp,
                st: params.st,
                seed: params.seed,
                deadline_ms: None,
            },
        };
        let direct = Request::TraceDirect {
            source: path,
            options: WireBuildOptions::default(),
            patterns: patterns.to_vec(),
            deadline_ms: None,
        };
        self.check_serve_one(case_name, "serve-json", false, &seeded, outcome)?;
        self.check_serve_one(case_name, "serve-binary", true, &seeded, outcome)?;
        self.check_serve_one(case_name, "serve-binary-direct", true, &direct, outcome)
    }

    fn check_serve_one(
        &mut self,
        case_name: &str,
        layer: &'static str,
        binary: bool,
        request: &Request,
        outcome: &CheckOutcome,
    ) -> Result<(), Mismatch> {
        let (json_client, binary_client) = self.clients().map_err(|e| mismatch(layer, e))?;
        let client = if binary { binary_client } else { json_client };
        let response = client
            .request(request)
            .map_err(|e| mismatch(layer, format!("{case_name}: {e}")))?;
        let values = match response {
            Response::Trace { values, .. } => values,
            Response::Error { kind, message, .. } => {
                return Err(mismatch(
                    layer,
                    format!("{case_name}: server error {}: {message}", kind.name()),
                ));
            }
            other => {
                return Err(mismatch(
                    layer,
                    format!("{case_name}: unexpected response {other:?}"),
                ));
            }
        };
        if values.len() != outcome.kernel_trace.len() {
            return Err(mismatch(
                layer,
                format!(
                    "{case_name}: served {} transitions, local trace has {}",
                    values.len(),
                    outcome.kernel_trace.len()
                ),
            ));
        }
        for (t, (&got, &want)) in values.iter().zip(&outcome.kernel_trace).enumerate() {
            if got.to_bits() != want.to_bits() {
                return Err(mismatch(
                    layer,
                    format!("{case_name}: transition {t}: served {got} vs local {want}"),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenConfig;

    fn tmpdir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("charfree-conform-{}-{tag}", std::process::id()))
    }

    #[test]
    fn oracle_accepts_a_known_good_case() {
        let dir = tmpdir("oracle-ok");
        let mut oracle = Oracle::new(&dir, false).expect("workdir");
        let spec = CircuitSpec::random(
            "ok",
            3,
            &GenConfig {
                num_inputs: 5,
                num_gates: 10,
                window: 6,
            },
        );
        let params = CaseParams {
            sp: 0.5,
            st: 0.4,
            seed: 11,
            vectors: 24,
        };
        let outcome = oracle
            .check_spec("ok", &spec, &params)
            .expect("all layers agree");
        assert_eq!(outcome.transitions, 23);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oracle_rejects_a_corrupted_trace() {
        let dir = tmpdir("oracle-bad");
        let mut oracle = Oracle::new(&dir, false).expect("workdir");
        let spec = CircuitSpec::parity_tree(4);
        let netlist = spec.build(oracle.library()).expect("builds");
        let text = blif::write(&netlist);
        // A width-violating pattern trace must be a typed params mismatch,
        // not a panic.
        let bad = vec![vec![true; 3], vec![false; 3]];
        let err = oracle.check_text("bad", &text, &bad).expect_err("width");
        assert_eq!(err.layer, "params");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
