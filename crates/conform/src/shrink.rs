//! Greedy failing-case minimization.
//!
//! Given a `(circuit, trace)` pair on which some check fails, the
//! shrinker repeatedly tries structure-removing edits — drop trace
//! vectors (halves first, then singles), drop gates, drop inputs — and
//! keeps any edit after which the failure still reproduces, until a
//! fixpoint. The result is the smallest case the greedy walk can reach,
//! which in practice turns a 30-gate random DAG into a handful of gates
//! pinpointing the divergence.

use crate::gen::CircuitSpec;

/// A minimized failing case.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimized circuit.
    pub spec: CircuitSpec,
    /// The minimized pattern trace (always at least 2 patterns).
    pub patterns: Vec<Vec<bool>>,
    /// Edits accepted on the way down.
    pub steps: usize,
}

/// Shrinks `(spec, patterns)` while `still_fails` keeps returning `true`
/// for the reduced case. `still_fails` must be deterministic; it is
/// called once per candidate edit.
///
/// The initial case is assumed failing (the caller observed the
/// mismatch); if `still_fails` rejects it, it is returned unchanged.
pub fn shrink<F>(spec: &CircuitSpec, patterns: &[Vec<bool>], mut still_fails: F) -> Shrunk
where
    F: FnMut(&CircuitSpec, &[Vec<bool>]) -> bool,
{
    let mut spec = spec.clone();
    let mut patterns: Vec<Vec<bool>> = patterns.to_vec();
    let mut steps = 0usize;

    loop {
        let mut progressed = false;

        // 1. Trace reduction: drop the later half, then single vectors.
        while patterns.len() > 2 {
            let half = patterns.len() / 2;
            let head: Vec<Vec<bool>> = patterns[..half.max(2)].to_vec();
            if head.len() < patterns.len() && still_fails(&spec, &head) {
                patterns = head;
                steps += 1;
                progressed = true;
            } else {
                break;
            }
        }
        let mut v = 0;
        while patterns.len() > 2 && v < patterns.len() {
            let mut candidate = patterns.clone();
            candidate.remove(v);
            if still_fails(&spec, &candidate) {
                patterns = candidate;
                steps += 1;
                progressed = true;
            } else {
                v += 1;
            }
        }

        // 2. Gate removal, highest index first (consumers rewire to the
        // removed gate's first fanin). Keep at least one gate so the
        // circuit stays a circuit.
        let mut j = spec.gates.len();
        while j > 0 && spec.gates.len() > 1 {
            j -= 1;
            if j >= spec.gates.len() {
                continue;
            }
            let candidate = spec.without_gate(j);
            if still_fails(&candidate, &patterns) {
                spec = candidate;
                steps += 1;
                progressed = true;
            }
        }

        // 3. Input removal (trace bits drop with the input).
        let mut i = spec.num_inputs;
        while i > 0 && spec.num_inputs > 2 {
            i -= 1;
            if i >= spec.num_inputs {
                continue;
            }
            let candidate_spec = spec.without_input(i);
            let candidate_patterns: Vec<Vec<bool>> = patterns
                .iter()
                .map(|p| {
                    let mut p = p.clone();
                    p.remove(i);
                    p
                })
                .collect();
            if still_fails(&candidate_spec, &candidate_patterns) {
                spec = candidate_spec;
                patterns = candidate_patterns;
                steps += 1;
                progressed = true;
            }
        }

        if !progressed {
            break;
        }
    }

    Shrunk {
        spec,
        patterns,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{CircuitSpec, GenConfig};
    use charfree_netlist::CellKind;

    /// A check that "fails" whenever the circuit still contains an XOR
    /// gate — the shrinker should strip everything else away.
    #[test]
    fn shrinks_to_the_smallest_case_containing_the_trigger() {
        let cfg = GenConfig {
            num_inputs: 6,
            num_gates: 24,
            window: 8,
        };
        // Find a seed whose DAG contains at least one XOR.
        let (spec, patterns) = (0..64u64)
            .find_map(|seed| {
                let s = CircuitSpec::random("trigger", seed, &cfg);
                s.gates
                    .iter()
                    .any(|g| g.kind == CellKind::Xor2)
                    .then(|| (s, vec![vec![false; 6]; 8]))
            })
            .expect("some seed contains an XOR");
        let fails =
            |s: &CircuitSpec, _p: &[Vec<bool>]| s.gates.iter().any(|g| g.kind == CellKind::Xor2);
        assert!(fails(&spec, &patterns));
        let shrunk = shrink(&spec, &patterns, fails);
        assert!(fails(&shrunk.spec, &shrunk.patterns), "must still fail");
        assert_eq!(shrunk.spec.gates.len(), 1, "only the trigger survives");
        assert_eq!(shrunk.patterns.len(), 2, "trace floor is 2 patterns");
        assert!(shrunk.spec.num_inputs <= 2);
        assert!(shrunk.steps > 0);
    }
}
