//! # charfree-conform — differential conformance harness
//!
//! The paper's central claim (Eq. 4) is that the analytical ADD model
//! *is* the golden gate-level zero-delay model — and every layer grown
//! on top (collapsed models, compiled kernels, the cached pipeline, the
//! batching server) re-expresses that one function. This crate checks
//! the whole lattice generatively:
//!
//! * [`gen`] — seeded random DAGs over the cell library plus structured
//!   families (adders, mux trees, parity trees), emitted as real BLIF so
//!   the parsers stay in the loop;
//! * [`oracle`] — one circuit, one `(sp, st)` Markov trace, every layer:
//!   golden sim ≡ exact ADD ≡ kernel (scalar/1 job/N jobs) ≡ pipeline
//!   cold ≡ pipeline warm reload ≡ live `charfree-serve` round trip,
//!   bit for bit; unit-delay dominates; collapsed models bracket;
//! * [`shrink`] — greedy gate/input/vector deletion while a mismatch
//!   reproduces;
//! * [`corpus`] — minimized repros persisted as text and replayed as
//!   regression tests;
//! * [`campaign`] — fault injection: budget trips, deadlines and
//!   poisoned cache entries must degrade gracefully, never corrupt
//!   answers, and never cache.
//!
//! Drive it via [`run`] (what `charfree conform` calls) or compose the
//! pieces directly in tests.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod campaign;
pub mod chaos;
pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod shrink;

use std::fmt::Write as _;
use std::path::PathBuf;

use gen::{CircuitSpec, GenConfig, SplitMix64};
use oracle::{CaseParams, Oracle};

/// Configuration for one [`run`] (the `charfree conform` flags).
#[derive(Debug, Clone)]
pub struct ConformConfig {
    /// Generated cases to check.
    pub cases: usize,
    /// Master seed; every case derives its own sub-seed from it.
    pub seed: u64,
    /// Trace length per case.
    pub vectors: usize,
    /// Corpus directory: replayed before generation, and (with
    /// [`ConformConfig::shrink`]) the destination for new minimized
    /// repros.
    pub corpus: Option<PathBuf>,
    /// Minimize failing cases before reporting (and persist them when a
    /// corpus directory is set).
    pub shrink: bool,
    /// Route every generated case through a live in-process server.
    pub serve: bool,
    /// Run the fault-injection campaigns after the differential sweep.
    pub campaigns: bool,
    /// Run the I/O chaos campaign (injected short writes, torn renames,
    /// stream faults; see [`chaos`]) after the standard campaigns.
    pub chaos: bool,
    /// Minimum injected I/O faults the chaos campaign must reach.
    pub chaos_faults: u64,
    /// Scratch directory (case files, artifact caches).
    pub workdir: PathBuf,
}

impl Default for ConformConfig {
    fn default() -> Self {
        ConformConfig {
            cases: 64,
            seed: 0xC0FFEE,
            vectors: 48,
            corpus: None,
            shrink: true,
            serve: true,
            campaigns: true,
            chaos: false,
            chaos_faults: 200,
            workdir: std::env::temp_dir().join(format!("charfree-conform-{}", std::process::id())),
        }
    }
}

/// The sp/st operating points cases cycle through (all feasible for the
/// Markov source: `st ≤ 2·min(sp, 1−sp)`).
const OPERATING_POINTS: [(f64, f64); 4] = [(0.5, 0.4), (0.3, 0.2), (0.7, 0.5), (0.5, 0.05)];

/// Derives the `i`-th case circuit from the master seed, cycling through
/// the random-DAG and structured families.
pub fn case_spec(master_seed: u64, i: usize) -> CircuitSpec {
    let mut rng = SplitMix64::new(master_seed ^ (i as u64).wrapping_mul(0x9e37_79b9));
    let case_seed = rng.next_u64();
    match i % 6 {
        0..=2 => {
            let cfg = GenConfig {
                num_inputs: 4 + (case_seed as usize % 6),        // 4..=9
                num_gates: 6 + ((case_seed >> 8) as usize % 22), // 6..=27
                window: 5 + ((case_seed >> 16) as usize % 8),
            };
            CircuitSpec::random(format!("dag{i}"), case_seed, &cfg)
        }
        3 => CircuitSpec::adder(2 + i % 3),       // 2..=4 bits
        4 => CircuitSpec::mux_tree(2 + i % 2),    // depth 2..=3
        _ => CircuitSpec::parity_tree(4 + i % 6), // 4..=9 bits
    }
}

/// Runs the conformance sweep: corpus replay, then `cases` generated
/// circuits through every oracle layer, then the fault campaigns.
/// Returns a human-readable report on success.
///
/// # Errors
///
/// A diagnostic describing the first failure — including, when
/// shrinking is enabled, the minimized repro (persisted to the corpus
/// directory when one is configured).
pub fn run(config: &ConformConfig) -> Result<String, String> {
    let mut oracle = Oracle::new(&config.workdir, config.serve)?;

    // Phase 1: replay the committed corpus — past divergences stay dead.
    let mut replayed = 0usize;
    if let Some(dir) = &config.corpus {
        for repro in corpus::load_corpus(dir)? {
            oracle
                .check_text(
                    &format!("corpus-{}", repro.name),
                    &repro.blif,
                    &repro.patterns,
                )
                .map_err(|m| format!("corpus replay `{}` failed: {m}", repro.name))?;
            replayed += 1;
        }
    }

    // Phase 2: the generative differential sweep.
    for i in 0..config.cases {
        let spec = case_spec(config.seed, i);
        let (sp, st) = OPERATING_POINTS[i % OPERATING_POINTS.len()];
        let params = CaseParams {
            sp,
            st,
            seed: config.seed ^ (0xA5A5 + i as u64),
            vectors: config.vectors,
        };
        let case_name = format!("case{i}");
        if let Err(m) = oracle.check_spec(&case_name, &spec, &params) {
            return Err(handle_failure(
                &mut oracle,
                config,
                &case_name,
                &spec,
                &params,
                m,
            ));
        }
    }

    // Phase 3: fault injection.
    let campaign_report = if config.campaigns {
        Some(campaign::run(
            config.seed,
            &config.workdir.join("campaign"),
        )?)
    } else {
        None
    };

    // Phase 4: I/O chaos (crash-safety and self-healing).
    let chaos_report = if config.chaos {
        let chaos_config = chaos::ChaosConfig {
            seed: config.seed,
            fault_target: config.chaos_faults,
        };
        Some(chaos::run(&chaos_config, &config.workdir.join("chaos"))?)
    } else {
        None
    };

    let mut report = String::new();
    if config.cases > 0 {
        let _ = writeln!(
            report,
            "conform: {} generated cases x {} layers agreed bit-for-bit ({} transitions checked)",
            config.cases,
            if config.serve { 6 } else { 5 },
            oracle.transitions
        );
    }
    if replayed > 0 {
        let _ = writeln!(report, "conform: {replayed} corpus repro(s) replayed clean");
    }
    if let Some(c) = campaign_report {
        let _ = writeln!(
            report,
            "conform: campaigns passed ({} budget trips, {} degraded, {} poisoned entries healed)",
            c.trips, c.degraded, c.healed
        );
    }
    if let Some(c) = chaos_report {
        let _ = writeln!(
            report,
            "conform: chaos campaign passed ({} faults injected, {} bit checks, \
             {} recoveries, {} quarantined, {} served under faults, {} typed failures, \
             {} panics supervised, {} breaker denials)",
            c.injected_faults,
            c.bit_checks,
            c.recoveries,
            c.quarantined,
            c.served_ok,
            c.typed_failures,
            c.worker_panics,
            c.breaker_denials
        );
    }
    oracle.finish();
    Ok(report)
}

/// On a mismatch: optionally shrink, optionally persist, and render the
/// final error message.
fn handle_failure(
    oracle: &mut Oracle,
    config: &ConformConfig,
    case_name: &str,
    spec: &CircuitSpec,
    params: &CaseParams,
    original: oracle::Mismatch,
) -> String {
    let mut msg = format!("{case_name}: {original}");
    if !config.shrink {
        return msg;
    }
    let patterns = match oracle.patterns_for(spec, params) {
        Ok(p) => p,
        Err(_) => return msg,
    };
    let library = oracle.library().clone();
    // Shrink against the local layers only (the server generates its own
    // patterns from a seed, so arbitrary reduced traces cannot be
    // replayed through it).
    let shrunk = shrink::shrink(spec, &patterns, |s, p| {
        let Ok(netlist) = s.build(&library) else {
            return false;
        };
        let text = charfree_netlist::blif::write(&netlist);
        oracle.check_text("shrinking", &text, p).is_err()
    });
    let _ = write!(
        msg,
        "\nshrunk to {} gates / {} inputs / {} patterns in {} steps",
        shrunk.spec.gates.len(),
        shrunk.spec.num_inputs,
        shrunk.patterns.len(),
        shrunk.steps
    );
    if let Ok(netlist) = shrunk.spec.build(&library) {
        let repro = corpus::Repro {
            name: case_name.to_owned(),
            seed: params.seed,
            sp: params.sp,
            st: params.st,
            blif: charfree_netlist::blif::write(&netlist),
            patterns: shrunk.patterns.clone(),
        };
        if let Some(dir) = &config.corpus {
            match repro.write_to(dir) {
                Ok(path) => {
                    let _ = write!(msg, "\nrepro written to {}", path.display());
                }
                Err(e) => {
                    let _ = write!(msg, "\nrepro could not be written: {e}");
                }
            }
        } else {
            let _ = write!(msg, "\nminimized repro:\n{}", repro.to_text());
        }
    }
    msg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_specs_are_deterministic_and_diverse() {
        let a = case_spec(0xC0FFEE, 7);
        let b = case_spec(0xC0FFEE, 7);
        assert_eq!(a, b, "same seed, same case");
        let families: std::collections::HashSet<String> = (0..12)
            .map(|i| {
                case_spec(1, i)
                    .name
                    .trim_end_matches(char::is_numeric)
                    .to_owned()
            })
            .collect();
        assert!(
            families.len() >= 4,
            "dag + adder + muxtree + parity: {families:?}"
        );
    }
}
